(* Kernel layer: hosts, the Pager's fault paths (with their costs on the
   virtual clock), trace-driven process execution, and PCBs. *)
open Accent_sim
open Accent_mem
open Accent_kernel

let world () = Accent_core.World.create ~n_hosts:2 ()

let host w i = Accent_core.World.host w i
let run w = ignore (Accent_core.World.run w)

(* --- Pcb / Trace --- *)

let test_pcb_microstate () =
  let a = Pcb.create ~tag:1 () and b = Pcb.create ~tag:1 () in
  Alcotest.(check int) "size" 1024 (Pcb.size_bytes a);
  Alcotest.(check int) "deterministic" (Pcb.checksum a) (Pcb.checksum b);
  let c = Pcb.create ~tag:2 () in
  Alcotest.(check bool) "tag matters" false (Pcb.checksum a = Pcb.checksum c)

let test_trace_accounting () =
  let t =
    Trace.of_steps
      [
        { Trace.page = 1; think_ms = 10.; write = false };
        { Trace.page = 2; think_ms = 5.; write = false };
        { Trace.page = 1; think_ms = 5.; write = false };
      ]
  in
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check (float 1e-9)) "think" 20. (Trace.total_think_ms t);
  Alcotest.(check int) "distinct" 2 (Trace.distinct_pages t);
  Alcotest.(check (list int)) "first-ref order" [ 1; 2 ] (Trace.pages t)

(* --- Host --- *)

let test_host_spawn () =
  let w = world () in
  let h = host w 0 in
  let space = Host.new_space h ~name:"p" in
  Address_space.validate_zero space (Vaddr.of_len 0 512);
  let proc =
    Host.spawn h ~name:"p" ~trace:(Trace.of_steps []) ~space ~n_ports:3 ()
  in
  Alcotest.(check int) "ports created" 3 (List.length proc.Proc.ports);
  Alcotest.(check int) "registered" 1 (Host.proc_count h);
  (* ports are homed on this host *)
  List.iter
    (fun port ->
      Alcotest.(check (option int)) "port homed" (Some 0)
        (Accent_net.Net_registry.port_home (Host.registry h) port))
    proc.Proc.ports

(* --- Pager fault paths, with paper-calibrated costs --- *)

let build_proc h ~steps builder =
  let space = Host.new_space h ~name:"p" in
  builder space;
  Host.spawn h ~name:"p" ~trace:(Trace.of_steps steps) ~space ()

let reference_once w h proc page =
  let t0 = Accent_core.World.now w in
  let done_at = ref None in
  Pager.reference (Host.pager h) proc page ~k:(fun () ->
      done_at := Some (Accent_core.World.now w));
  run w;
  match !done_at with
  | Some t -> Time.to_ms (Time.diff t t0)
  | None -> Alcotest.fail "reference never completed"

let test_resident_reference_is_free () =
  let w = world () in
  let h = host w 0 in
  let proc =
    build_proc h ~steps:[] (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:true)
  in
  Alcotest.(check (float 1e-9)) "no fault, no cost" 0.
    (reference_once w h proc 0)

let test_fill_zero_fault_cost () =
  let w = world () in
  let h = host w 0 in
  let proc =
    build_proc h ~steps:[] (fun space ->
        Address_space.validate_zero space (Vaddr.of_len 0 512))
  in
  let cost = reference_once w h proc 0 in
  Alcotest.(check (float 1e-9)) "FillZero is the cheap fault"
    Cost_model.default.Cost_model.fill_zero_ms cost;
  (* and the page is now resident zeros *)
  match Address_space.presence_of_page (Proc.space_exn proc) 0 with
  | Address_space.Resident _ -> ()
  | _ -> Alcotest.fail "expected resident"

let test_disk_fault_cost_is_40_8ms () =
  let w = world () in
  let h = host w 0 in
  let proc =
    build_proc h ~steps:[] (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:false)
  in
  let cost = reference_once w h proc 0 in
  Alcotest.(check (float 1e-6)) "the paper's 40.8 ms local disk fault" 40.8
    cost;
  Alcotest.(check int) "counted" 1 (Pager.faults_disk (Host.pager h))

let test_bad_reference_raises () =
  let w = world () in
  let h = host w 0 in
  let proc = build_proc h ~steps:[] (fun _ -> ()) in
  Alcotest.check_raises "BadMem"
    (Pager.Bad_memory_reference { proc = "p"; page = 9 })
    (fun () -> Pager.reference (Host.pager h) proc 9 ~k:ignore)

let test_imaginary_fault_via_backing_server () =
  (* Map a segment backed on host 1 into a process on host 0 and fault on
     it: the page must arrive bit-exact and the cost must be the paper's
     ~115 ms remote fault. *)
  let w = world () in
  let h0 = host w 0 and h1 = host w 1 in
  let backing = Accent_core.Backing_server.create h1 ~name:"backer" in
  let segment_id = Accent_core.Backing_server.new_segment backing in
  let payload = Bytes.init 1024 (fun i -> Char.chr (i mod 256)) in
  Accent_core.Backing_server.put_bytes backing ~segment_id ~offset:0 payload;
  let proc =
    build_proc h0 ~steps:[] (fun space ->
        Accent_core.Backing_server.map_into backing h0 space ~at:0 ~segment_id
          ~offset:0 ~len:1024)
  in
  let cost = reference_once w h0 proc 0 in
  Alcotest.(check bool)
    (Printf.sprintf "remote fault ~115ms (got %.1f)" cost)
    true
    (cost > 100. && cost < 130.);
  Alcotest.(check int) "served by the backer" 1
    (Accent_core.Backing_server.faults_served backing);
  (match Address_space.page_data (Proc.space_exn proc) 0 with
  | Some page ->
      Alcotest.(check bool) "bit-exact delivery" true
        (Bytes.equal page (Bytes.sub payload 0 512))
  | None -> Alcotest.fail "page missing");
  Alcotest.(check int) "fault counted" 1 (Pager.faults_imag (Host.pager h0))

let test_prefetch_installs_and_tracks_hits () =
  let w = world () in
  let h0 = host w 0 and h1 = host w 1 in
  let backing = Accent_core.Backing_server.create h1 ~name:"backer" in
  let segment_id = Accent_core.Backing_server.new_segment backing in
  Accent_core.Backing_server.put_bytes backing ~segment_id ~offset:0
    (Bytes.make (512 * 4) 'p');
  let proc =
    build_proc h0 ~steps:[] (fun space ->
        Accent_core.Backing_server.map_into backing h0 space ~at:0 ~segment_id
          ~offset:0 ~len:(512 * 4))
  in
  proc.Proc.prefetch <- 3;
  ignore (reference_once w h0 proc 0);
  Alcotest.(check int) "three extra pages installed" 3
    proc.Proc.prefetch_extra;
  (* all four pages are now local *)
  Alcotest.(check int) "materialised" 4
    (Address_space.pages_materialized (Proc.space_exn proc));
  (* referencing a prefetched page is a hit, not a fault *)
  ignore (reference_once w h0 proc 2);
  Alcotest.(check int) "hit recorded" 1 proc.Proc.prefetch_hits;
  Alcotest.(check int) "still one fault" 1 (Pager.faults_imag (Host.pager h0));
  Alcotest.(check (option (float 1e-9))) "hit ratio" (Some (1. /. 3.))
    (Proc.prefetch_hit_ratio proc)

let test_segment_death_on_release () =
  let w = world () in
  let h0 = host w 0 and h1 = host w 1 in
  let backing = Accent_core.Backing_server.create h1 ~name:"backer" in
  let segment_id = Accent_core.Backing_server.new_segment backing in
  Accent_core.Backing_server.put_bytes backing ~segment_id ~offset:0
    (Bytes.make 512 'd');
  let proc =
    build_proc h0 ~steps:[] (fun space ->
        Accent_core.Backing_server.map_into backing h0 space ~at:0 ~segment_id
          ~offset:0 ~len:512)
  in
  Pager.release_segments (Host.pager h0)
    ~space_id:(Address_space.id (Proc.space_exn proc));
  run w;
  Alcotest.(check int) "death delivered" 1
    (Accent_core.Backing_server.deaths_received backing);
  Alcotest.(check int) "segment gone" 0
    (Accent_core.Backing_server.segments_alive backing)

(* --- Proc_runner --- *)

let test_runner_executes_trace () =
  let w = world () in
  let h = host w 0 in
  let steps =
    [
      { Trace.page = 0; think_ms = 10.; write = false };
      { Trace.page = 1; think_ms = 10.; write = false };
      { Trace.page = 0; think_ms = 10.; write = false };
    ]
  in
  let proc =
    build_proc h ~steps (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 1024 'x')
          ~resident:true)
  in
  let completed = ref false in
  proc.Proc.on_complete <- Some (fun _ -> completed := true);
  Proc_runner.start h proc;
  run w;
  Alcotest.(check bool) "completed" true !completed;
  Alcotest.(check bool) "terminated" true
    (proc.Proc.pcb.Pcb.status = Pcb.Terminated);
  Alcotest.(check (option (float 1e-6))) "pure think time" (Some 30.)
    (Option.map Time.to_ms (Proc.remote_execution_time proc));
  Alcotest.(check int) "touched pages noted" 2
    (Address_space.touched_pages (Proc.space_exn proc))

let test_runner_faults_add_time () =
  let w = world () in
  let h = host w 0 in
  let steps = [ { Trace.page = 0; think_ms = 10.; write = false } ] in
  let proc =
    build_proc h ~steps (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:false)
  in
  Proc_runner.start h proc;
  run w;
  Alcotest.(check (option (float 1e-6))) "think + disk fault" (Some 50.8)
    (Option.map Time.to_ms (Proc.remote_execution_time proc))

let test_runner_interrupt_freezes () =
  let w = world () in
  let h = host w 0 in
  let steps = List.init 10 (fun _ -> { Trace.page = 0; think_ms = 10.; write = false }) in
  let proc =
    build_proc h ~steps (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:true)
  in
  Proc_runner.start h proc;
  ignore (Accent_core.World.run ~limit:(Time.ms 35.) w);
  Proc_runner.interrupt proc;
  run w;
  Alcotest.(check bool) "not terminated" true
    (proc.Proc.pcb.Pcb.status = Pcb.Ready);
  Alcotest.(check bool) "pc part-way" true
    (proc.Proc.pcb.Pcb.pc > 0 && proc.Proc.pcb.Pcb.pc < 10)

let suite =
  ( "kernel",
    [
      Alcotest.test_case "pcb microstate" `Quick test_pcb_microstate;
      Alcotest.test_case "trace accounting" `Quick test_trace_accounting;
      Alcotest.test_case "host spawn" `Quick test_host_spawn;
      Alcotest.test_case "resident reference free" `Quick
        test_resident_reference_is_free;
      Alcotest.test_case "FillZero cost" `Quick test_fill_zero_fault_cost;
      Alcotest.test_case "disk fault 40.8ms" `Quick
        test_disk_fault_cost_is_40_8ms;
      Alcotest.test_case "bad reference raises" `Quick test_bad_reference_raises;
      Alcotest.test_case "imaginary fault ~115ms" `Quick
        test_imaginary_fault_via_backing_server;
      Alcotest.test_case "prefetch installs and hits" `Quick
        test_prefetch_installs_and_tracks_hits;
      Alcotest.test_case "segment death on release" `Quick
        test_segment_death_on_release;
      Alcotest.test_case "runner executes trace" `Quick
        test_runner_executes_trace;
      Alcotest.test_case "runner faults add time" `Quick
        test_runner_faults_add_time;
      Alcotest.test_case "runner interrupt" `Quick test_runner_interrupt_freezes;
    ] )

(* --- CPU contention --- *)

let test_colocated_processes_contend () =
  (* two compute-bound processes on one host take ~2x as long as one *)
  let make_world () = world () in
  let compute_steps =
    List.init 10 (fun _ -> { Trace.page = 0; think_ms = 100.; write = false })
  in
  let build h suffix =
    build_proc h ~steps:compute_steps (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:true)
    |> fun p ->
    ignore suffix;
    p
  in
  let solo_world = make_world () in
  let solo = build (host solo_world 0) "solo" in
  Proc_runner.start (host solo_world 0) solo;
  run solo_world;
  let solo_time = Option.get (Proc.remote_execution_time solo) in
  let busy_world = make_world () in
  let h = host busy_world 0 in
  let a = build h "a" and b = build h "b" in
  Proc_runner.start h a;
  Proc_runner.start h b;
  run busy_world;
  let shared_time = Option.get (Proc.remote_execution_time a) in
  Alcotest.(check (float 1e-6)) "solo takes its think time" 1000.
    (Time.to_ms solo_time);
  Alcotest.(check bool)
    (Printf.sprintf "contention roughly doubles it (%.0fms)"
       (Time.to_ms shared_time))
    true
    (Time.to_ms shared_time > 1800.)

let test_spreading_improves_makespan () =
  let compute_steps =
    List.init 10 (fun _ -> { Trace.page = 0; think_ms = 100.; write = false })
  in
  let build h =
    build_proc h ~steps:compute_steps (fun space ->
        Address_space.install_bytes space ~addr:0 (Bytes.make 512 'x')
          ~resident:true)
  in
  let makespan spread =
    let w = world () in
    let h0 = host w 0 and h1 = host w 1 in
    let a = build h0 and b = build (if spread then h1 else h0) in
    Proc_runner.start h0 a;
    Proc_runner.start (if spread then h1 else h0) b;
    run w;
    Time.to_seconds (Accent_core.World.now w)
  in
  Alcotest.(check bool) "two hosts beat one" true
    (makespan true < makespan false /. 1.5)

let contention_cases =
  [
    Alcotest.test_case "co-located contention" `Quick
      test_colocated_processes_contend;
    Alcotest.test_case "spreading improves makespan" `Quick
      test_spreading_improves_makespan;
  ]

let suite = (fst suite, snd suite @ contention_cases)
