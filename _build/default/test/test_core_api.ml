(* Core-library plumbing: strategy naming, context coordinate translation,
   report derivations, world composition, and the working-set strategy. *)
open Accent_kernel
open Accent_core
module Ablations = Accent_experiments.Ablations

(* --- Strategy --- *)

let test_strategy_names () =
  Alcotest.(check string) "copy" "copy" (Strategy.name Strategy.pure_copy);
  Alcotest.(check string) "iou pf0" "iou" (Strategy.name (Strategy.pure_iou ()));
  Alcotest.(check string) "iou pf3" "iou+pf3"
    (Strategy.name (Strategy.pure_iou ~prefetch:3 ()));
  Alcotest.(check string) "rs" "rs" (Strategy.name (Strategy.resident_set ()));
  Alcotest.(check string) "ws" "ws+pf1"
    (Strategy.name (Strategy.working_set ~prefetch:1 ()));
  Alcotest.(check string) "precopy" "precopy"
    (Strategy.name (Strategy.pre_copy ()));
  Alcotest.(check int) "paper sweep" 5
    (List.length Strategy.paper_prefetch_values)

(* --- Context layout translation --- *)

let runs =
  [
    { Context.vaddr_lo = 1000; vaddr_hi = 3000; collapsed_lo = 0 };
    { Context.vaddr_lo = 10_000; vaddr_hi = 11_000; collapsed_lo = 2000 };
  ]

let test_collapsed_of_vaddr () =
  Alcotest.(check (option int)) "first run start" (Some 0)
    (Context.collapsed_of_vaddr runs 1000);
  Alcotest.(check (option int)) "first run middle" (Some 500)
    (Context.collapsed_of_vaddr runs 1500);
  Alcotest.(check (option int)) "second run" (Some 2400)
    (Context.collapsed_of_vaddr runs 10_400);
  Alcotest.(check (option int)) "gap" None
    (Context.collapsed_of_vaddr runs 5000)

let test_vaddr_of_collapsed_roundtrip () =
  List.iter
    (fun vaddr ->
      match Context.collapsed_of_vaddr runs vaddr with
      | Some c ->
          Alcotest.(check (option int)) "roundtrip" (Some vaddr)
            (Context.vaddr_of_collapsed runs c)
      | None -> Alcotest.fail "expected a mapping")
    [ 1000; 1999; 2500; 10_000; 10_999 ];
  Alcotest.(check (option int)) "beyond content" None
    (Context.vaddr_of_collapsed runs 3000)

(* --- Report derivations --- *)

let test_report_spans () =
  let r =
    Report.create ~proc_name:"p" ~strategy:Strategy.pure_copy
  in
  r.Report.requested_at <- Some 0.;
  r.Report.excised_at <- Some 1000.;
  r.Report.core_delivered_at <- Some 3000.;
  r.Report.rimas_delivered_at <- Some 2000.;
  r.Report.inserted_at <- Some 3500.;
  r.Report.restarted_at <- Some 3600.;
  r.Report.completed_at <- Some 8600.;
  Alcotest.(check (float 1e-9)) "excise" 1. (Report.excise_seconds r);
  Alcotest.(check (float 1e-9)) "rimas from excise" 1.
    (Report.rimas_transfer_seconds r);
  Alcotest.(check (float 1e-9)) "transfer is the later of the two" 2.
    (Report.transfer_seconds r);
  Alcotest.(check (float 1e-9)) "remote exec" 5.
    (Report.remote_execution_seconds r);
  Alcotest.(check (float 1e-9)) "end to end" 8.6 (Report.end_to_end_seconds r);
  Alcotest.(check (float 1e-9)) "downtime without freeze = from request" 3.6
    (Report.downtime_seconds r);
  r.Report.frozen_at <- Some 3000.;
  Alcotest.(check (float 1e-9)) "downtime with freeze" 0.6
    (Report.downtime_seconds r)

let test_report_missing_stamps () =
  let r = Report.create ~proc_name:"p" ~strategy:Strategy.pure_copy in
  Alcotest.(check (float 1e-9)) "no crash on missing stamps" 0.
    (Report.end_to_end_seconds r);
  Alcotest.(check (option Alcotest.reject)) "no hit ratio" None
    (Option.map ignore (Report.prefetch_hit_ratio r))

(* --- World --- *)

let test_world_composition () =
  let world = World.create ~n_hosts:3 () in
  Alcotest.(check int) "hosts" 3 (Array.length world.World.hosts);
  Alcotest.(check int) "managers" 3 (Array.length world.World.managers);
  List.iteri
    (fun i host ->
      Alcotest.(check int) "ids in order" i (Host.id host);
      Alcotest.(check string) "names" (Printf.sprintf "host%d" i)
        (Host.name host))
    (Array.to_list world.World.hosts);
  (* manager ports are mutually routable *)
  Array.iteri
    (fun i mm ->
      Alcotest.(check (option int)) "manager port homed" (Some i)
        (Accent_net.Net_registry.port_home world.World.registry
           (Migration_manager.port mm)))
    world.World.managers

let test_world_determinism () =
  let run () =
    let result =
      Accent_experiments.Trial.run ~spec:Test_helpers.small_spec
        ~strategy:(Strategy.pure_iou ()) ()
    in
    Report.end_to_end_seconds result.Accent_experiments.Trial.report
  in
  Alcotest.(check (float 1e-12)) "worlds are reproducible" (run ()) (run ())

(* --- Working_set strategy --- *)

let ws_spec =
  {
    Test_helpers.small_spec with
    Accent_workloads.Spec.name = "WsTest";
    refs = 300;
    total_think_ms = 20_000.;
  }

let test_working_set_strategy_runs () =
  let result =
    Accent_experiments.Trial.run ~spec:ws_spec
      ~strategy:(Strategy.working_set ~window_ms:4_000. ())
      ~migrate_after_ms:6_000. ()
  in
  let r = result.Accent_experiments.Trial.report in
  Alcotest.(check bool) "completed" true (r.Report.completed_at <> None);
  (* something was shipped physically (the recent working set) and some
     demand faults remained *)
  let fetched =
    Accent_mem.Page.size
    * (r.Report.dest_faults_imag + r.Report.prefetch_extra)
  in
  let shipped = r.Report.remote_real_bytes_fetched - fetched in
  Alcotest.(check bool) "shipped a working set" true (shipped > 0);
  Alcotest.(check bool) "still lazy for the rest" true
    (r.Report.dest_faults_imag > 0)

let test_working_set_ships_less_than_rs () =
  let run strategy =
    let result =
      Accent_experiments.Trial.run ~spec:ws_spec ~strategy
        ~migrate_after_ms:6_000. ()
    in
    let r = result.Accent_experiments.Trial.report in
    r.Report.remote_real_bytes_fetched
    - Accent_mem.Page.size
      * (r.Report.dest_faults_imag + r.Report.prefetch_extra)
  in
  let ws = run (Strategy.working_set ~window_ms:2_000. ()) in
  let rs = run (Strategy.resident_set ()) in
  Alcotest.(check bool)
    (Printf.sprintf "ws ships less than rs (%d < %d)" ws rs)
    true (ws < rs)

let test_cold_working_set_degenerates_to_iou () =
  (* migrated at t=0 the process never ran: empty working set, all IOU *)
  let result =
    Accent_experiments.Trial.run ~spec:Test_helpers.small_spec
      ~strategy:(Strategy.working_set ()) ()
  in
  let r = result.Accent_experiments.Trial.report in
  Alcotest.(check int) "every touched page faulted"
    Test_helpers.small_spec.Accent_workloads.Spec.touched_real_pages
    r.Report.dest_faults_imag

let test_ws_vs_rs_ablation () =
  let rows =
    Ablations.ws_vs_rs ~spec:ws_spec ~migrate_after_ms:6_000. ()
  in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  let find name = List.find (fun r -> r.Ablations.ws_strategy = name) rows in
  let rs = find "rs" and iou = find "iou" in
  Alcotest.(check bool) "rs ships the most" true
    (List.for_all
       (fun r -> r.Ablations.shipped_bytes <= rs.Ablations.shipped_bytes)
       rows);
  Alcotest.(check int) "iou ships nothing" 0 iou.Ablations.shipped_bytes

let suite =
  ( "core_api",
    [
      Alcotest.test_case "strategy names" `Quick test_strategy_names;
      Alcotest.test_case "collapsed_of_vaddr" `Quick test_collapsed_of_vaddr;
      Alcotest.test_case "vaddr_of_collapsed roundtrip" `Quick
        test_vaddr_of_collapsed_roundtrip;
      Alcotest.test_case "report spans" `Quick test_report_spans;
      Alcotest.test_case "report missing stamps" `Quick
        test_report_missing_stamps;
      Alcotest.test_case "world composition" `Quick test_world_composition;
      Alcotest.test_case "world determinism" `Quick test_world_determinism;
      Alcotest.test_case "working-set strategy" `Quick
        test_working_set_strategy_runs;
      Alcotest.test_case "ws ships less than rs" `Quick
        test_working_set_ships_less_than_rs;
      Alcotest.test_case "cold ws degenerates to iou" `Quick
        test_cold_working_set_degenerates_to_iou;
      Alcotest.test_case "ws_vs_rs ablation" `Quick test_ws_vs_rs_ablation;
    ] )

(* --- adaptive prefetch --- *)

let test_adaptive_prefetch_converges_up_and_down () =
  let run spec =
    let world = World.create ~n_hosts:2 () in
    let proc = Accent_workloads.Spec.build (World.host world 0) spec in
    let controller = ref None in
    ignore
      (Migration_manager.migrate (World.manager world 0) ~proc
         ~dest:(Migration_manager.port (World.manager world 1))
         ~strategy:(Strategy.pure_iou ~prefetch:1 ())
         ~on_restart:(fun p ->
           controller :=
             Some (Adaptive_prefetch.attach world.World.engine p))
         ());
    ignore (World.run world);
    let c = Option.get !controller in
    match List.rev (Adaptive_prefetch.trajectory c) with
    | (_, pf) :: _ -> (pf, Adaptive_prefetch.adjustments c)
    | [] -> Alcotest.fail "controller never sampled"
  in
  (* a long, strictly sequential program: prefetch should climb *)
  let sequential =
    {
      Test_helpers.small_spec with
      Accent_workloads.Spec.name = "SeqAda";
      real_bytes = 400 * 512;
      total_bytes = 600 * 512;
      rs_bytes = 20 * 512;
      touched_real_pages = 350;
      rs_touched_overlap = 18;
      refs = 400;
      total_think_ms = 2_000.;
      pattern =
        Accent_workloads.Access_pattern.Sequential
          { streams = 1; revisit = 0.; run = 64 };
    }
  in
  let pf_seq, adj_seq = run sequential in
  Alcotest.(check bool)
    (Printf.sprintf "sequential climbs (settled pf%d)" pf_seq)
    true (pf_seq >= 7);
  Alcotest.(check bool) "it actually adapted" true (adj_seq > 0);
  (* a scattered program: prefetch should stay low *)
  (* scattered AND sparse: only 20% of the pages are ever wanted, so the
     contiguous pages a prefetch drags in are mostly dead weight *)
  let scattered =
    {
      sequential with
      Accent_workloads.Spec.name = "RndAda";
      touched_real_pages = 80;
      rs_touched_overlap = 4;
      pattern = Accent_workloads.Access_pattern.Clustered_random { cluster = 1.2 };
    }
  in
  let pf_rnd, _ = run scattered in
  Alcotest.(check bool)
    (Printf.sprintf "scattered stays low (settled pf%d)" pf_rnd)
    true (pf_rnd <= 3)

let adaptive_cases =
  [
    Alcotest.test_case "adaptive prefetch converges" `Quick
      test_adaptive_prefetch_converges_up_and_down;
  ]

let suite = (fst suite, snd suite @ adaptive_cases)
