(** The seven representative processes of the paper's evaluation (§4.1).

    Composition numbers (Real, Total, resident set) are taken verbatim from
    Tables 4-1 and 4-2; access behaviour parameters (touched pages,
    resident-set overlap, pattern, compute time) are reconstructed from
    Table 4-3 and the §4.3/§4.4 narrative.  See DESIGN.md §6 for the
    derivations. *)

val minprog : Spec.t
(** Minimal Perq Pascal program: prints a message and dies — the "null
    trap" of migration measurements. *)

val lisp_t : Spec.t
(** SPICE Lisp asked to evaluate [T]: a 4 GB validated space of which
    almost nothing is touched. *)

val lisp_del : Spec.t
(** SPICE Lisp running Dwyer's Delaunay triangulation: real computation and
    I/O over the same enormous, weakly-local space. *)

val pm_start : Spec.t
(** Pasmac macro processor migrated as it opens its first definition
    file: most of its sequential file reading still ahead. *)

val pm_mid : Spec.t
(** Pasmac migrated after all definition files are read. *)

val pm_end : Spec.t
(** Pasmac migrated with expansion nearly complete. *)

val chess : Spec.t
(** Siemens chess program: long-lived, compute-bound, small hot set, a
    screen clock ticking every second. *)

val all : Spec.t list
(** In the paper's table order. *)

val by_name : string -> Spec.t option
(** Lookup by case-insensitive name, e.g. ["pm-start"]. *)
