test/test_helpers.ml: Accent_workloads String
