lib/kernel/cost_model.mli: Accent_ipc Accent_net
