(** Every calibrated time constant of the simulated testbed, in one place.

    Sources, all from the paper's own measurements on the Perq/Accent
    testbed (§4.3): a local disk fault costs 40.8 ms; a remote imaginary
    fault costs ~115 ms end-to-end; pure-copy shipment of an address space
    sustains roughly 15 KB/s effective (Table 4-5 Copy column ÷ Table 4-1
    Real column); AMap construction and RIMAS collapse costs fit linear
    models in region count, materialised pages, VM segments and resident
    pages (Table 4-4).  test/test_calibration.ml checks the emergent
    end-to-end numbers against these anchors. *)

type t = {
  ipc : Accent_ipc.Kernel_ipc.params;
  nms : Accent_net.Netmsgserver.params;
  link : Accent_net.Link.params;
  (* --- fault service (paper §2.3, §4.3.3) --- *)
  fill_zero_ms : float;  (** FillZero: reserve a frame, zero it, map it *)
  pager_ms : float;  (** Pager/Scheduler bookkeeping charged per fault *)
  disk_service_ms : float;
      (** paging-disk access; with [pager_ms] this makes the 40.8 ms local
          disk fault *)
  imag_install_per_page_ms : float;
      (** mapping in each page that arrives in an imaginary read reply *)
  (* --- ExciseProcess (Table 4-4) --- *)
  excise_base_ms : float;
  amap_base_ms : float;
  amap_per_region_ms : float;  (** per interval of the process map *)
  amap_per_real_page_ms : float;  (** page-table walk per materialised page *)
  amap_per_vm_segment_ms : float;
      (** the "costly search of system virtual memory tables" per segment *)
  rimas_base_ms : float;
  rimas_per_resident_page_ms : float;  (** remapping a resident page *)
  rimas_per_disk_page_ms : float;  (** re-describing an on-disk page *)
  (* --- InsertProcess (§4.3.1) --- *)
  insert_base_ms : float;
  insert_per_amap_entry_ms : float;
  insert_per_data_page_ms : float;  (** per physically-shipped page mapped *)
  (* --- context sizes --- *)
  pcb_bytes : int;  (** microstate + kernel stack + PCB: "roughly 1 Kbyte" *)
  fault_timeout_ms : float;
      (** give up on an imaginary fault after this long with no reply —
          the residual-dependency hazard of lazy migration: if the backing
          site dies, so does the relocated process *)
  (* --- host --- *)
  frames_per_host : int;  (** physical memory pool (2 MB Perq = 4096) *)
}

val default : t

val disk_fault_ms : t -> float
(** The full local disk fault cost ([pager_ms + disk_service_ms]);
    40.8 ms under {!default}. *)
