lib/net/net_registry.mli: Accent_ipc
