type status = Ready | Running | Blocked | Terminated | Excised

type t = {
  mutable status : status;
  mutable priority : int;
  mutable pc : int;
  microstate : bytes;
  mutable faults_zero : int;
  mutable faults_disk : int;
  mutable faults_imag : int;
  mutable migrations : int;
}

let create ?(priority = 0) ?(microstate_bytes = 1024) ~tag () =
  let microstate = Bytes.create microstate_bytes in
  let state = ref ((tag * 2654435761) lor 1) in
  for i = 0 to microstate_bytes - 1 do
    state := ((!state * 0x9E3779B9) + 0x7F4A7C15) land max_int;
    Bytes.set microstate i (Char.chr ((!state lsr 24) land 0xFF))
  done;
  {
    status = Ready;
    priority;
    pc = 0;
    microstate;
    faults_zero = 0;
    faults_disk = 0;
    faults_imag = 0;
    migrations = 0;
  }

let copy t =
  {
    status = t.status;
    priority = t.priority;
    pc = t.pc;
    microstate = Bytes.copy t.microstate;
    faults_zero = t.faults_zero;
    faults_disk = t.faults_disk;
    faults_imag = t.faults_imag;
    migrations = t.migrations;
  }

let size_bytes t = Bytes.length t.microstate
let checksum t = Accent_mem.Page.checksum t.microstate

let status_to_string = function
  | Ready -> "Ready"
  | Running -> "Running"
  | Blocked -> "Blocked"
  | Terminated -> "Terminated"
  | Excised -> "Excised"

let total_faults t = t.faults_zero + t.faults_disk + t.faults_imag
