open Accent_sim
open Accent_kernel

type arrival = {
  core : Context.core;
  rimas : Accent_ipc.Memory_object.t;
  prefetch : int;
  report : Report.t;
  on_complete : (Proc.t -> Report.t -> unit) option;
  on_restart : (Proc.t -> unit) option;
}

type ctx = {
  host : Host.t;
  port : Accent_ipc.Port.id;
  backing : Backing_server.t;
  bus : Mig_event.bus;
  dedup : Dedup.t;
  insert : arrival -> unit;
  note_received : unit -> unit;
}

type t = {
  name : string;
  claims : Strategy.transfer -> bool;
  start :
    proc:Proc.t ->
    dest:Accent_ipc.Port.id ->
    strategy:Strategy.t ->
    report:Report.t ->
    on_complete:(Proc.t -> Report.t -> unit) option ->
    on_restart:(Proc.t -> unit) option ->
    unit;
  handle : Accent_ipc.Message.t -> bool;
  give_up_proc : Accent_ipc.Message.payload -> int option;
  debug_stats : unit -> (string * int) list;
}

exception Abort of string

let emit ctx ~proc_id kind =
  Mig_event.publish ctx.bus
    { Mig_event.at = Engine.now (Host.engine ctx.host); proc_id; kind }

let abort_migration ctx ~proc_id reason =
  Logs.warn (fun m ->
      m "MigrationManager: aborting migration of proc %d (%s)" proc_id reason);
  emit ctx ~proc_id (Mig_event.Engine_abort { reason })

(* Freeze first: a live process may have a fault in flight, which must
   retire before ExciseProcess can dismantle the space. *)
let freeze_until_quiescent ctx proc ~k =
  Proc_runner.interrupt proc;
  let engine = Host.engine ctx.host in
  let rec once_quiescent () =
    if proc.Proc.in_flight then
      ignore (Engine.schedule engine ~delay:(Time.ms 2.) once_quiescent)
    else k ()
  in
  once_quiescent ()
