(** Excised process contexts.

    ExciseProcess delivers a context as two messages (paper §3.1): the
    {e Core} — microstate, kernel stack, PCB, port rights, plus an AMap of
    the whole address space — which must always be physically copied; and
    the {e RIMAS} — the RealMem and ImagMem contents collapsed into one
    contiguous area — which is eligible for lazy treatment. *)

type core = {
  proc_id : int;
  proc_name : string;
  pcb : Pcb.t;
  port_rights : Accent_ipc.Port.id list;
  amap : Accent_mem.Amap.t;
  trace : Trace.t;  (** the program: trace plus [pcb.pc] resumes execution *)
}

val core_wire_bytes : Cost_model.t -> core -> int
(** Bytes the Core message occupies: PCB blob + AMap + rights. *)

type layout_run = {
  vaddr_lo : int;
  vaddr_hi : int;
  collapsed_lo : int;
      (** where this content range begins in the collapsed RIMAS area *)
}

val collapsed_of_vaddr : layout_run list -> int -> int option
(** Translate a virtual address to its collapsed offset. *)

val vaddr_of_collapsed : layout_run list -> int -> int option
