(** Everything measured about one migration trial.

    The MigrationManagers stamp phase boundaries as the trial progresses;
    the experiment layer adds traffic totals read from the transfer monitor
    when the relocated process completes.  Accessors derive the quantities
    the paper reports: phase durations, end-to-end time, byte and
    message-cost totals, prefetch hit ratios. *)

type outcome =
  | Completed  (** the relocated process ran to completion *)
  | Degraded
      (** the process restarted at the destination, but the reliable
          transport abandoned at least one message along the way (or the
          pager killed the process after an unanswerable fault) — the
          migration survived the network, impaired *)
  | Aborted
      (** the execution context never reached the destination; the process
          was never restarted there *)

val outcome_name : outcome -> string

type t = {
  proc_name : string;
  strategy : Strategy.t;
  mutable requested_at : Accent_sim.Time.t option;
      (** migration request received by the source MigrationManager *)
  mutable excised_at : Accent_sim.Time.t option;
  mutable core_delivered_at : Accent_sim.Time.t option;
  mutable rimas_delivered_at : Accent_sim.Time.t option;
  mutable inserted_at : Accent_sim.Time.t option;
  mutable restarted_at : Accent_sim.Time.t option;
  mutable completed_at : Accent_sim.Time.t option;
  mutable excise : Accent_kernel.Excise.timings option;
  mutable insert_ms : float option;
  (* pre-copy strategy only *)
  mutable frozen_at : Accent_sim.Time.t option;
      (** the process stopped executing at the source (for the classic
          strategies this coincides with the request) *)
  (* checkpoint/restore (crash recovery only) *)
  mutable checkpointed_at : Accent_sim.Time.t option;
      (** a durable image of the process was saved *)
  mutable checkpoint_restored_at : Accent_sim.Time.t option;
      (** the process was rebuilt from its checkpoint *)
  mutable checkpoint_pages : int;  (** pages banked by the checkpoint *)
  mutable precopy_rounds : int;
  mutable precopy_bytes : int;  (** payload bytes shipped by the rounds *)
  (* destination-side execution accounting *)
  mutable dest_faults_zero : int;
  mutable dest_faults_disk : int;
  mutable dest_faults_imag : int;
  mutable prefetch_extra : int;
  mutable prefetch_hits : int;
  mutable remote_touched_pages : int;
  mutable remote_real_bytes_fetched : int;
      (** bytes of RealMem content physically moved to the new site,
          whether at migration time or by faulting *)
  (* traffic totals over the whole trial (filled by the experiment layer) *)
  mutable bytes_control : int;
  mutable bytes_bulk : int;
  mutable bytes_fault : int;
  mutable bytes_retransmit : int;
      (** wire bytes burned resending fragments the network ate *)
  mutable bytes_ack : int;  (** wire bytes of acknowledgement packets *)
  mutable retransmits : int;  (** fragment retransmissions, both hosts *)
  mutable transport_give_ups : int;
      (** messages the reliable transport abandoned, both hosts *)
  mutable dedup_pages_checked : int;
      (** page digests advertised to and checked by the destination *)
  mutable dedup_hits : int;
      (** of those, pages the destination's content store already held *)
  mutable dedup_bytes_elided : int;
      (** page-data bytes never sent because their digests hit *)
  mutable network_messages : int;
  mutable message_seconds : float;
      (** node time spent manipulating messages, summed over both hosts *)
  mutable outcome : outcome;
}

val create : proc_name:string -> strategy:Strategy.t -> t

(** {2 Derived durations (seconds)} *)

val excise_seconds : t -> float
val core_transfer_seconds : t -> float
(** Excision end to Core delivery. *)

val rimas_transfer_seconds : t -> float
(** Excision end to RIMAS delivery — the paper's Table 4-5 quantity.  The
    two context messages travel concurrently, so this is not measured from
    Core delivery (under pure-IOU the small RIMAS often lands first). *)

val transfer_seconds : t -> float
(** Excision end to the later of the two deliveries. *)

val insert_seconds : t -> float
val remote_execution_seconds : t -> float
val end_to_end_seconds : t -> float
(** Request to remote completion. *)

val downtime_seconds : t -> float
(** How long the program executed nowhere: freeze (or request, for the
    classic strategies, which stop the process immediately) to restart at
    the destination.  The metric pre-copy exists to minimise. *)

val transfer_plus_execution_seconds : t -> float
(** The sum Figure 4-2 compares across strategies. *)

val recovery_seconds : t -> float
(** Checkpoint save to checkpoint restore — how long the durable image
    sat before a crash forced it back into service (0 when either stamp
    is missing). *)

val goodput_bytes : t -> int
(** Control + bulk + fault — the traffic the 1987 accounting knew about. *)

val overhead_bytes : t -> int
(** Retransmit + ack bytes added by the reliable transport. *)

val bytes_total : t -> int
(** Goodput plus overhead — everything that crossed the wire. *)

val prefetch_hit_ratio : t -> float option

val pp_summary : Format.formatter -> t -> unit
