(* Deterministic PRNG: reproducibility, stream independence, range and
   distribution sanity. *)
open Accent_util

let draws n f =
  let rng = Rng.create 7L in
  List.init n (fun _ -> f rng)

let test_deterministic () =
  let a = draws 100 (fun r -> Rng.bits64 r) in
  let b = draws 100 (fun r -> Rng.bits64 r) in
  Alcotest.(check (list int64)) "same seed, same stream" a b

let test_seed_changes_stream () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" false
    (List.init 10 (fun _ -> Rng.bits64 a)
    = List.init 10 (fun _ -> Rng.bits64 b))

let test_label_derivation_stable () =
  let parent = Rng.create 99L in
  let a = Rng.of_label parent "pager" in
  let b = Rng.of_label parent "pager" in
  Alcotest.(check int64) "same label, same derived stream" (Rng.bits64 a)
    (Rng.bits64 b)

let test_label_derivation_distinct () =
  let parent = Rng.create 99L in
  let a = Rng.of_label parent "pager" in
  let b = Rng.of_label parent "disk" in
  Alcotest.(check bool) "labels independent" false
    (Rng.bits64 a = Rng.bits64 b)

let test_label_does_not_consume_parent () =
  let p1 = Rng.create 5L and p2 = Rng.create 5L in
  let _ = Rng.of_label p1 "x" in
  Alcotest.(check int64) "parent unaffected by derivation" (Rng.bits64 p1)
    (Rng.bits64 p2)

let test_split_independent () =
  let parent = Rng.create 11L in
  let child = Rng.split parent in
  Alcotest.(check bool) "child differs from parent" false
    (Rng.bits64 child = Rng.bits64 parent)

let test_int_range () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= x < 17" true (x >= 0 && x < 17)
  done

let test_float_range () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= x < 2.5" true (x >= 0. && x < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 4L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_bernoulli_rate () =
  let rng = Rng.create 4L in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000. in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_exponential_mean () =
  let rng = Rng.create 6L in
  let stats = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add stats (Rng.exponential rng 5.)
  done;
  let mean = Stats.mean stats in
  Alcotest.(check bool) "mean near 5" true (mean > 4.7 && mean < 5.3)

let test_geometric_mean () =
  let rng = Rng.create 8L in
  let stats = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add stats (float_of_int (Rng.geometric rng 0.5))
  done;
  (* mean of geometric (failures before success) with p=0.5 is 1 *)
  let mean = Stats.mean stats in
  Alcotest.(check bool) "mean near 1" true (mean > 0.9 && mean < 1.1)

let test_shuffle_permutes () =
  let rng = Rng.create 10L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_choose_member () =
  let rng = Rng.create 12L in
  let arr = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    let choice = Rng.choose rng arr in
    Alcotest.(check bool) "choice is a member" true
      (Array.exists (fun x -> x = choice) arr)
  done

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds"
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_shuffle_preserves_elements =
  QCheck.Test.make ~name:"Rng.shuffle preserves elements"
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let suite =
  ( "rng",
    [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "seed changes stream" `Quick test_seed_changes_stream;
      Alcotest.test_case "label stable" `Quick test_label_derivation_stable;
      Alcotest.test_case "label distinct" `Quick test_label_derivation_distinct;
      Alcotest.test_case "label preserves parent" `Quick
        test_label_does_not_consume_parent;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "int range" `Quick test_int_range;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
      Alcotest.test_case "choose member" `Quick test_choose_member;
      QCheck_alcotest.to_alcotest prop_int_bounds;
      QCheck_alcotest.to_alcotest prop_shuffle_preserves_elements;
    ] )
