(** The pre-copy transfer engine (paper §5, Theimer's V system baseline).

    The process keeps executing at the source while rounds of dirty pages
    are pushed ahead of it; when a round leaves little enough dirt (or the
    round budget is spent) the process is frozen, excised, and the
    residual shipped with the Core in one final message.  The destination
    stages round pages in a segment store and assembles the full RIMAS at
    insertion time.

    Owns the round/ack wire protocol, the source-side round state and the
    destination-side staging store — the manager sees only the standard
    {!Transfer_engine.t} surface. *)

type Accent_ipc.Message.payload +=
  | Mig_precopy_pages of {
      proc_id : int;
      round : int;
      src_port : Accent_ipc.Port.id;  (** where the acknowledgement goes *)
    }  (** memory object: Data chunks in virtual-address coordinates *)
  | Mig_precopy_ack of { proc_id : int; round : int }
  | Mig_precopy_final of {
      core : Accent_kernel.Context.core;
      report : Report.t;
      on_complete : (Accent_kernel.Proc.t -> Report.t -> unit) option;
    }  (** memory object: the residual dirty pages, vaddr coordinates *)

val create : Transfer_engine.ctx -> Transfer_engine.t
(** Claims [Pre_copy].  Degraded paths (a page value vanishing mid-round,
    a staged page missing at insertion) abort that one migration with an
    {!Mig_event.Engine_abort} event instead of raising; a transport
    give-up or engine abort also clears the migration's staged pages and
    round state, so failed migrations leak nothing. *)

(** {2 Push-protocol helpers}

    Shared with {!Engine_hybrid}, which pushes rounds over the working
    set only and leaves the cold tail as IOUs. *)

val vaddr_data_chunks :
  Accent_mem.Address_space.t ->
  Accent_mem.Page.index list ->
  Accent_ipc.Memory_object.t
(** Read the named pages out of the (live) space and coalesce consecutive
    ones into Data chunks addressed by virtual address.  Raises
    {!Transfer_engine.Abort} if a page value has vanished. *)

val all_real_pages :
  Accent_mem.Address_space.t -> Accent_mem.Page.index list

val iou_chunks_in_vaddr :
  Accent_kernel.Excise.excised -> Accent_ipc.Memory_object.t
(** Convert any surviving IOU chunks of an excised RIMAS back to
    virtual-address coordinates using the excision layout. *)

val staged_store :
  (int, Accent_ipc.Segment_store.t) Hashtbl.t ->
  int ->
  Accent_ipc.Segment_store.t
(** Find-or-create the per-process staging store. *)

val stage_chunks :
  Accent_ipc.Segment_store.t ->
  proc_id:int ->
  Accent_ipc.Memory_object.t ->
  unit
(** File every Data chunk's pages into the store, keyed by virtual
    address; IOU chunks are left alone. *)
