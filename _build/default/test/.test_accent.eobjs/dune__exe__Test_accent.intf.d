test/test_accent.mli:
