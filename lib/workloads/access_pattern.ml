open Accent_util

type t =
  | Sequential of { streams : int; revisit : float; run : int }
  | Clustered_random of { cluster : float }
  | Hot_cold of { hot_fraction : float; hot_prob : float }

(* Positions here index the universe array — i.e. they are collapsed-space
   page numbers, which is the coordinate system prefetch operates in. *)

(* Each stream owns a section of the universe and touches runs of ~[run]
   consecutive pages separated by gaps (distinct mapped files and data
   areas are not perfectly contiguous in the collapsed space), which is
   what keeps large-prefetch hit ratios below 100%. *)
let span_positions ~rng ~universe_len ~count ~parts ~run =
  let parts = max 1 (min parts count) in
  let run = max 1 run in
  let section = universe_len / parts in
  let per = count / parts and extra = count mod parts in
  List.concat
    (List.init parts (fun i ->
         let want = min section (per + if i < extra then 1 else 0) in
         let base = i * section in
         let n_runs = max 1 ((want + run - 1) / run) in
         let slack = max 0 (section - want) in
         let gap = slack / max 1 n_runs in
         let jitter = if gap > 1 then Rng.int rng gap else 0 in
         let rec place acc pos left =
           if left <= 0 then acc
           else begin
             let take = min run left in
             let acc =
               List.rev_append (List.init take (fun j -> pos + j)) acc
             in
             place acc (pos + take + gap) (left - take)
           end
         in
         List.rev (place [] (base + jitter) want)))

let cluster_positions ~rng ~universe_len ~count ~cluster =
  let mean = Float.max 1. cluster in
  let taken = Hashtbl.create count in
  let rec collect acc n =
    if n >= count then acc
    else begin
      let len = 1 + Rng.geometric rng (1. /. mean) in
      let len = min len (count - n) in
      (* the +1 keeps the final page reachable: without it a touched set
         equal to the whole universe could never complete *)
      let start = Rng.int rng (max 1 (universe_len - len + 1)) in
      let fresh =
        List.filter
          (fun p -> p < universe_len && not (Hashtbl.mem taken p))
          (List.init len (fun j -> start + j))
      in
      List.iter (fun p -> Hashtbl.replace taken p ()) fresh;
      collect (List.rev_append fresh acc) (n + List.length fresh)
    end
  in
  collect [] 0

let hot_cold_positions ~rng ~universe_len ~count ~hot_fraction =
  let hot_n = max 1 (int_of_float (hot_fraction *. float_of_int count)) in
  let hot_n = min hot_n count in
  let start = Rng.int rng (max 1 (universe_len - hot_n + 1)) in
  let hot = List.init hot_n (fun j -> start + j) in
  let taken = Hashtbl.create count in
  List.iter (fun p -> Hashtbl.replace taken p ()) hot;
  let rec cold acc n =
    if n = 0 then acc
    else begin
      let p = Rng.int rng universe_len in
      if Hashtbl.mem taken p then cold acc n
      else begin
        Hashtbl.replace taken p ();
        cold (p :: acc) (n - 1)
      end
    end
  in
  hot @ cold [] (count - hot_n)

let choose_touched_in t ~rng ~universe_len ~page_of ~count =
  if count > universe_len then
    invalid_arg "Access_pattern.choose_touched: count exceeds universe";
  let positions =
    match t with
    | Sequential { streams; run; _ } ->
        span_positions ~rng ~universe_len ~count ~parts:streams ~run
    | Clustered_random { cluster } ->
        cluster_positions ~rng ~universe_len ~count ~cluster
    | Hot_cold { hot_fraction; _ } ->
        hot_cold_positions ~rng ~universe_len ~count ~hot_fraction
  in
  let positions = List.sort_uniq compare positions in
  (* Overlapping spans can deduplicate below [count]; top up with the first
     free positions so the touched-set size is exact. *)
  let positions =
    let have = List.length positions in
    if have >= count then positions
    else begin
      let taken = Hashtbl.create count in
      List.iter (fun p -> Hashtbl.replace taken p ()) positions;
      let extra = ref [] and need = ref (count - have) and p = ref 0 in
      while !need > 0 && !p < universe_len do
        if not (Hashtbl.mem taken !p) then begin
          extra := !p :: !extra;
          decr need
        end;
        incr p
      done;
      List.sort compare (positions @ !extra)
    end
  in
  Array.of_list (List.map page_of positions)

let choose_touched t ~rng ~universe ~count =
  choose_touched_in t ~rng ~universe_len:(Array.length universe)
    ~page_of:(Array.get universe) ~count

(* --- trace generation --------------------------------------------------- *)

let sequential_order ~rng ~streams ~revisit touched =
  let n = Array.length touched in
  let streams = max 1 (min streams n) in
  let bounds =
    Array.init streams (fun i -> (i * n / streams, (i + 1) * n / streams))
  in
  let cursors = Array.map fst bounds in
  let order = ref [] and emitted = ref 0 in
  let live () =
    Array.exists (fun i -> cursors.(i) < snd bounds.(i)) (Array.init streams Fun.id)
  in
  let stream = ref 0 in
  while live () do
    let s = !stream mod streams in
    stream := !stream + 1;
    let lo, hi = bounds.(s) in
    ignore lo;
    if cursors.(s) < hi then begin
      let pos = cursors.(s) in
      cursors.(s) <- pos + 1;
      order := touched.(pos) :: !order;
      incr emitted;
      (* occasional re-reference to a recently-seen page of this stream *)
      if Rng.bernoulli rng revisit && pos > fst bounds.(s) then begin
        let back = 1 + Rng.int rng (min 8 (pos - fst bounds.(s))) in
        order := touched.(pos - back) :: !order;
        incr emitted
      end
    end
  done;
  List.rev !order

let clusters_of touched =
  let n = Array.length touched in
  let rec split i start acc =
    if i >= n then List.rev ((start, n) :: acc)
    else if touched.(i) = touched.(i - 1) + 1 then split (i + 1) start acc
    else split (i + 1) i ((start, i) :: acc)
  in
  if n = 0 then [] else split 1 0 []

let clustered_order ~rng touched =
  let clusters = Array.of_list (clusters_of touched) in
  Rng.shuffle rng clusters;
  Array.to_list clusters
  |> List.concat_map (fun (lo, hi) ->
         List.init (hi - lo) (fun j -> touched.(lo + j)))

(* Array-based throughout: a churn run builds one trace per arriving
   job, so the list/append/map chain this replaces was the single
   largest per-job allocator.  The RNG call sequence is identical
   (base order, then filler picks in index order, then one think-time
   draw per step), so generated traces are unchanged. *)
let generate t ~rng ~touched ~refs ~total_think_ms =
  let n = Array.length touched in
  if n = 0 then
    Accent_kernel.Trace.of_arrays ~pages:[||] ~think_ms:[||]
      ~writes:Bytes.empty
  else begin
    let base_order =
      match t with
      | Sequential { streams; revisit; run = _ } ->
          Array.of_list (sequential_order ~rng ~streams ~revisit touched)
      | Clustered_random _ -> Array.of_list (clustered_order ~rng touched)
      | Hot_cold _ ->
          (* hot span first (initialisation), then the cold pages *)
          touched
    in
    let base_len = Array.length base_order in
    let total = base_len + max 0 (refs - base_len) in
    let pages = Array.make total 0 in
    Array.blit base_order 0 pages 0 base_len;
    (match t with
    | Hot_cold { hot_fraction; hot_prob } ->
        let hot_n = max 1 (int_of_float (hot_fraction *. float_of_int n)) in
        for i = base_len to total - 1 do
          pages.(i) <-
            (if Rng.bernoulli rng hot_prob then touched.(Rng.int rng hot_n)
             else touched.(Rng.int rng n))
        done
    | Sequential _ | Clustered_random _ ->
        for i = base_len to total - 1 do
          pages.(i) <- touched.(Rng.int rng n)
        done);
    let mean_think = total_think_ms /. float_of_int total in
    (* Array.map applies in index order, so the think-time draws come out
       in the same RNG sequence as the per-step map this replaces *)
    let think_ms = Array.map (fun _ -> Rng.exponential rng mean_think) pages in
    Accent_kernel.Trace.of_arrays ~pages ~think_ms
      ~writes:(Bytes.make total '\000')
  end
