lib/sim/ids.mli:
