(** Figure 4-5: network byte-transfer rates over the migration and remote
    execution of Lisp-Del under the three strategies (no prefetch).

    Fault-driven traffic is drawn distinctly from bulk/control transfers,
    reproducing the paper's white-vs-black split: pure-copy shows its
    characteristic early bulk burst; pure-IOU a low, steady trickle that
    finishes while the copy transfer is still in flight. *)

type panel = {
  strategy : Accent_core.Strategy.t;
  fault : (float * float) array;  (** (second, bytes/s) bins *)
  other : (float * float) array;
  end_to_end_s : float;
}

val panels :
  ?seed:int64 -> ?spec:Accent_workloads.Spec.t -> ?bin_s:float -> unit ->
  panel list
(** Runs the three trials (default Lisp-Del, 1-second bins). *)

val render : panel list -> string

val peak_rate : panel -> float
(** Peak combined bytes/s — pure-IOU's should be far below pure-copy's
    ("sustained network transmission speeds are reduced up to 66%"). *)
