(** Table 4-2: resident set sizes at migration time and their relation to
    the non-zero data and the total allocated space. *)

type row = {
  name : string;
  rs_size : int;
  pct_of_real : float;
  pct_of_total : float;
}

val rows :
  ?seed:int64 -> ?specs:Accent_workloads.Spec.t list -> unit -> row list

val render : row list -> string
val row_of_proc : Accent_kernel.Proc.t -> row
