lib/experiments/sweep.mli: Accent_kernel Accent_workloads Trial
