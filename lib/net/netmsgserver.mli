(** The NetMsgServer: Accent's user-level network IPC extension (§2.4).

    One runs on every host.  It receives messages the local kernel cannot
    deliver (no local Receive rights), looks the destination port up in the
    shared registry, fragments the message onto the link, and on the far
    side charges reassembly and hands the message to that kernel.

    Its distinguishing feature for this paper: {b IOU caching}.  On its own
    initiative — unless the sender set the NoIOUs bit — it may retain the
    physically-present portions of an outbound memory object, create an
    imaginary segment over them backed by a port it serves, and transmit
    only IOUs.  A MigrationManager that "doesn't attempt sophisticated
    address space management" gets lazy copy-on-reference shipment simply
    by leaving NoIOUs clear (§3.2).  The NMS then fields Imaginary Read
    Requests for the cached data until the segment's death notice
    arrives. *)

type params = {
  base_ms : float;  (** handling cost per message, each side *)
  per_byte_ms : float;  (** protocol cost per wire byte, each side *)
  per_chunk_ms : float;  (** fragmentation/reassembly cost per memory chunk *)
  iou_cache_setup_ms : float;
      (** send side, once per message cached: creating the segment and its
          backing port *)
  cache_per_page_ms : float;
      (** send side, per page retained: the cache is built by memory
          mapping, so this is small *)
  stand_in_per_chunk_ms : float;
      (** receive side, per IOU chunk: creating the local stand-in
          imaginary object *)
  backing_lookup_ms : float;  (** servicing one read request from the cache *)
  iou_caching : bool;  (** master switch for §2.4 caching behaviour *)
  flow_window : int;
      (** fragments a sender may have unacknowledged at once.  1 =
          stop-and-wait, the 1987 behaviour; larger windows pipeline the
          two NMS CPUs and the wire (a what-if ablation — Theimer reported
          exactly the buffering overruns this risks) *)
  arq : Reliable.params option;
      (** [None] (the default) keeps the 1987 pipeline above: implicit
          zero-cost acks, reliable wire assumed.  [Some p] replaces it with
          the {!Reliable} sliding-window transport — sequence numbers, real
          acknowledgement packets, retransmission with backoff, checksums —
          which is required for the link's {!Fault_plan} to be survivable.
          [flow_window] is ignored in that case; [p.window] governs. *)
  dedup : bool;
      (** content-addressed transfer: when on, the migration layer
          negotiates digests before shipping page bytes and the NMS feeds
          every page value it sees into its {!Content_store}.  Off by
          default — with it off the wire traffic, costs, and id sequence
          are byte-identical to a build without the feature (the dedup
          experiments turn it on themselves). *)
  dedup_capacity_pages : int;
      (** LRU bound on the digest index of the host's content store;
          0 disables opportunistic digest caching cleanly *)
}

val default_params : params

type t

val create :
  Accent_sim.Engine.t ->
  ids:Accent_sim.Ids.t ->
  host_id:int ->
  kernel:Accent_ipc.Kernel_ipc.t ->
  link:Link.t ->
  registry:Net_registry.t ->
  monitor:Transfer_monitor.t ->
  params:params ->
  t
(** Wires itself up: becomes the kernel's forwarder and registers its
    inbound entry point with the registry. *)

val host_id : t -> int

val reliability : t -> Reliable.t option
(** The host's reliable transport, when [params.arq] asked for one. *)

val content_store : t -> Content_store.t
(** The host's shared content-addressed page store.  The NMS keeps its
    IOU-cache segments in it, and the MigrationManager's backing server
    shares the same instance, so one host stores any given page value
    once no matter which layer banked it. *)

val dedup_enabled : t -> bool
(** Whether [params.dedup] asked for digest-first transfers. *)

val on_transport_give_up : t -> (Accent_ipc.Message.t -> unit) -> unit
(** Register a handler run when the reliable transport abandons an
    outbound message after exhausting its retries.  The MigrationManager
    uses this to mark a migration [Degraded] or [Aborted] rather than
    waiting forever on a message the network will never deliver. *)

val transport_give_ups : t -> int
(** Messages this host's transport has abandoned (0 without ARQ). *)

(** {2 Accounting (drives Figure 4-4)} *)

val busy_time : t -> Accent_sim.Time.t
(** CPU time this NMS has spent handling messages. *)

val messages_handled : t -> int
val bytes_cached : t -> int
(** Data retained by IOU caching so far. *)

val segments_backed : t -> int
(** Cached segments currently alive. *)

val faults_served : t -> int
(** Imaginary read requests answered from the cache. *)

val pages_served : t -> int
(** Pages returned by those replies (> faults when prefetching). *)

val reset_accounting : t -> unit

val fail_backing : t -> unit
(** Failure injection: the server loses its cached segments and unbinds
    their ports, as if the machine (or the NetMsgServer process) crashed
    and restarted without its cache.  Outstanding and future read requests
    for those segments go unanswered — the residual-dependency hazard of
    copy-on-reference migration made testable. *)
