lib/experiments/evaluation.mli: Sweep
