(** Content store for imaginary segments held by a backing process.

    Whoever holds Receive rights for a backing port needs the segment's
    pages at hand to answer read requests.  This store keeps them indexed
    by page-aligned segment offset and implements the request-answering
    logic shared by the NetMsgServer cache and application-level backing
    servers: return up to [pages] contiguous pages starting at an offset,
    stopping early at holes or the segment end. *)

type t

val create : unit -> t

val add_segment : t -> segment_id:int -> unit
(** Declare a segment (idempotent). *)

val put_page : t -> segment_id:int -> offset:int -> Accent_mem.Page.value ->
  unit
(** Store one page value at the page-aligned [offset].  Implicitly declares
    the segment.  Nothing is copied — values are immutable. *)

val put_extent : t -> segment_id:int -> offset:int ->
  Accent_mem.Page_run.t -> unit
(** Adopt a whole run of page values starting at the page-aligned [offset]
    in O(1) — the run is referenced, not copied.  Raises
    [Invalid_argument] if the run overlaps an extent already stored;
    offsets already present via {!put_page} keep shadowing the extent. *)

val put_bytes : t -> segment_id:int -> offset:int -> bytes -> unit
(** Bytes-edge convenience: store a run of pages; trailing partial page
    zero-padded. *)

val get_page : t -> segment_id:int -> offset:int ->
  Accent_mem.Page.value option

val read_run : t -> segment_id:int -> offset:int -> pages:int ->
  Accent_mem.Page.value list
(** Pages at [offset], [offset+512], ... while present, at most [pages] of
    them — the service routine for {!Protocol.Imaginary_read_request}.
    Empty if the first page is absent. *)

val has_segment : t -> segment_id:int -> bool

val offsets : t -> segment_id:int -> int list
(** All present page offsets of the segment, ascending — O(present pages),
    so callers can walk what the store holds instead of probing every
    offset of a range. *)

val segment_pages : t -> segment_id:int -> int
val segment_bytes : t -> segment_id:int -> int

val drop_segment : t -> segment_id:int -> unit
(** Forget a dead segment's pages. *)

val segments : t -> int list
val total_bytes : t -> int
