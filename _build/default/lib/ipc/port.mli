(** Ports: Accent's protected, location-transparent message queues.

    A port is named by an id; the kernel on each host knows which local
    server (if any) holds Receive rights, and the NetMsgServer knows which
    remote host to forward to otherwise.  Because processes name ports and
    never hosts, migrating a process — which passes all its port rights to
    the new incarnation — does not disturb anybody who can name those
    ports (paper §3.1). *)

type id = private int

val fresh : Accent_sim.Ids.t -> id
(** Allocate a new port id from the world's id source. *)

val compare : id -> id -> int
val equal : id -> id -> bool
val to_int : id -> int
val pp : Format.formatter -> id -> unit

type right = Receive | Send | Ownership
(** The three Accent port rights.  Receive and Ownership are held by exactly
    one task at a time; Send rights proliferate. *)

val right_to_string : right -> string

module Set : Set.S with type elt = id
module Table : Hashtbl.S with type key = id
