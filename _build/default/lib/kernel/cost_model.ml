type t = {
  ipc : Accent_ipc.Kernel_ipc.params;
  nms : Accent_net.Netmsgserver.params;
  link : Accent_net.Link.params;
  fill_zero_ms : float;
  pager_ms : float;
  disk_service_ms : float;
  imag_install_per_page_ms : float;
  excise_base_ms : float;
  amap_base_ms : float;
  amap_per_region_ms : float;
  amap_per_real_page_ms : float;
  amap_per_vm_segment_ms : float;
  rimas_base_ms : float;
  rimas_per_resident_page_ms : float;
  rimas_per_disk_page_ms : float;
  insert_base_ms : float;
  insert_per_amap_entry_ms : float;
  insert_per_data_page_ms : float;
  pcb_bytes : int;
  fault_timeout_ms : float;
  frames_per_host : int;
}

let default =
  {
    ipc = Accent_ipc.Kernel_ipc.default_params;
    nms = Accent_net.Netmsgserver.default_params;
    link = Accent_net.Link.default_params;
    fill_zero_ms = 2.0;
    pager_ms = 2.8;
    disk_service_ms = 38.0;
    imag_install_per_page_ms = 1.0;
    excise_base_ms = 60.;
    amap_base_ms = 250.;
    amap_per_region_ms = 0.15;
    amap_per_real_page_ms = 0.42;
    amap_per_vm_segment_ms = 5.0;
    rimas_base_ms = 180.;
    rimas_per_resident_page_ms = 1.25;
    rimas_per_disk_page_ms = 0.03;
    insert_base_ms = 150.;
    insert_per_amap_entry_ms = 0.5;
    insert_per_data_page_ms = 0.12;
    pcb_bytes = 1024;
    fault_timeout_ms = 60_000.;
    frames_per_host = 4096;
  }

let disk_fault_ms t = t.pager_ms +. t.disk_service_ms
