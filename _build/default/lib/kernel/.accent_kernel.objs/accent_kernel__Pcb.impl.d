lib/kernel/pcb.ml: Accent_mem Bytes Char
