type Message.payload +=
  | Imaginary_read_request of { segment_id : int; offset : int; pages : int }
  | Imaginary_read_reply of {
      segment_id : int;
      offset : int;
      page_data : Accent_mem.Page.value list;
    }
  | Imaginary_segment_death of { segment_id : int }
  | Mig_digests of {
      xfer_id : int;
      proc_id : int;
      src_port : Port.id;
      runs : (int * int array) list;
    }
  | Mig_need of { xfer_id : int; proc_id : int; need : (int * int) list }

let read_request ~ids ~dest ~reply_to ~segment_id ~offset ~pages =
  Message.make ~ids ~dest ~reply_to ~inline_bytes:32 ~category:Message.Fault
    (Imaginary_read_request { segment_id; offset; pages })

let read_reply ~ids ~dest ~segment_id ~offset ~page_data =
  let data_bytes = List.length page_data * Accent_mem.Page.size in
  Message.make ~ids ~dest ~category:Message.Fault
    ~inline_bytes:(32 + data_bytes)
    (Imaginary_read_reply { segment_id; offset; page_data })

let segment_death ~ids ~dest ~segment_id =
  Message.make ~ids ~dest ~inline_bytes:32
    (Imaginary_segment_death { segment_id })

(* The advertisement carries one 8-byte digest per page plus a 12-byte
   (offset, count) header per run; the need reply is 8 bytes per run. *)
let mig_digests ~ids ~dest ~xfer_id ~proc_id ~src_port ~runs =
  let digests =
    List.fold_left (fun acc (_, ds) -> acc + Array.length ds) 0 runs
  in
  Message.make ~ids ~dest ~category:Message.Control
    ~inline_bytes:(32 + (12 * List.length runs) + (8 * digests))
    (Mig_digests { xfer_id; proc_id; src_port; runs })

let mig_need ~ids ~dest ~xfer_id ~proc_id ~need =
  Message.make ~ids ~dest ~category:Message.Control
    ~inline_bytes:(32 + (8 * List.length need))
    (Mig_need { xfer_id; proc_id; need })
