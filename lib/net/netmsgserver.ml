open Accent_sim
open Accent_ipc

type params = {
  base_ms : float;
  per_byte_ms : float;
  per_chunk_ms : float;
  iou_cache_setup_ms : float;
  cache_per_page_ms : float;
  stand_in_per_chunk_ms : float;
  backing_lookup_ms : float;
  iou_caching : bool;
  flow_window : int;
  arq : Reliable.params option;
  dedup : bool;
  dedup_capacity_pages : int;
}

(* Calibrated (see Accent_kernel.Cost_model and test/test_calibration.ml)
   so that one remote imaginary page fetch costs ~115 ms end-to-end (of
   which ~60 ms is NMS CPU and the rest kernel, link and backing-process
   wakeup latency) and bulk shipment sustains the ~14 KB/s the paper's
   pure-copy times imply (Table 4-5 Copy ÷ Table 4-1 Real). *)
let default_params =
  {
    base_ms = 2.0;
    per_byte_ms = 0.032;
    per_chunk_ms = 0.8;
    iou_cache_setup_ms = 100.;
    cache_per_page_ms = 0.006;
    stand_in_per_chunk_ms = 3.;
    backing_lookup_ms = 38.;
    iou_caching = true;
    flow_window = 1;
    arq = None;
    dedup = false;
    dedup_capacity_pages = 4096;
  }

type t = {
  engine : Engine.t;
  ids : Ids.t;
  host_id : int;
  kernel : Kernel_ipc.t;
  link : Link.t;
  registry : Net_registry.t;
  monitor : Transfer_monitor.t;
  params : params;
  cpu : Queue_server.t;
  cache : Content_store.t;
  backing_ports : (int, Port.id) Hashtbl.t; (* segment -> port *)
  mutable handled : int;
  mutable cached_bytes : int;
  mutable faults_served : int;
  mutable pages_served : int;
  mutable rel : Reliable.t option;
  mutable give_up_handlers : (Message.t -> unit) list;
  mutable transport_give_ups : int;
}

let host_id t = t.host_id

let chunk_count msg =
  match msg.Message.memory with
  | None -> 0
  | Some m -> Memory_object.chunk_count m

(* Serve an imaginary read request aimed at one of our cached segments.
   The lookup delay models waking the backing process and walking its maps
   — latency, not message-handling CPU, so it is charged on the clock
   rather than the CPU server (it does not appear in Figure 4-4). *)
let serve_fault t msg segment_id offset pages =
  match msg.Message.reply_to with
  | None ->
      Logs.warn (fun m -> m "NMS%d: read request without reply port" t.host_id)
  | Some reply_port ->
      ignore
        (Engine.schedule t.engine ~delay:(Time.ms t.params.backing_lookup_ms)
           (fun () ->
             let page_data =
               Content_store.read_run t.cache ~segment_id ~offset ~pages
             in
             t.faults_served <- t.faults_served + 1;
             t.pages_served <- t.pages_served + List.length page_data;
             let reply =
               Protocol.read_reply ~ids:t.ids ~dest:reply_port ~segment_id
                 ~offset ~page_data
             in
             Kernel_ipc.send t.kernel reply))

let drop_segment t segment_id =
  Content_store.drop_segment t.cache ~segment_id;
  match Hashtbl.find_opt t.backing_ports segment_id with
  | None -> ()
  | Some port ->
      Hashtbl.remove t.backing_ports segment_id;
      Kernel_ipc.unbind t.kernel port;
      Net_registry.forget_port t.registry port

let backing_handler t msg =
  match msg.Message.payload with
  | Protocol.Imaginary_read_request { segment_id; offset; pages } ->
      serve_fault t msg segment_id offset pages
  | Protocol.Imaginary_segment_death { segment_id } ->
      drop_segment t segment_id
  | _ ->
      Logs.warn (fun m ->
          m "NMS%d: unexpected message on backing port" t.host_id)

(* §2.4: retain the Data chunks of an outbound memory object, become their
   backer, and substitute IOUs.  One fresh segment covers the whole
   message's data; chunk offsets within the object address the segment. *)
let substitute_ious t msg =
  match msg.Message.memory with
  | Some memory
    when t.params.iou_caching && (not msg.Message.no_ious)
         && Memory_object.data_bytes memory > 0 ->
      let segment_id = Ids.next t.ids in
      let backing_port = Port.fresh t.ids in
      Hashtbl.replace t.backing_ports segment_id backing_port;
      Kernel_ipc.bind t.kernel backing_port (backing_handler t);
      Net_registry.set_port_home t.registry backing_port ~host_id:t.host_id;
      let memory =
        Memory_object.map_chunks memory ~f:(fun chunk ->
            match chunk.Memory_object.content with
            | Memory_object.Iou _ | Memory_object.Digest_refs _ -> chunk
            | Memory_object.Data run ->
                let page_size = Accent_mem.Page.size in
                let lo = chunk.Memory_object.range.Accent_mem.Vaddr.lo in
                t.cached_bytes <-
                  t.cached_bytes + (Accent_mem.Page_run.length run * page_size);
                (* the chunk's run becomes the segment extent wholesale —
                   no per-page insert loop on the send path *)
                Content_store.put_extent t.cache ~segment_id ~offset:lo run;
                {
                  chunk with
                  Memory_object.content =
                    Memory_object.Iou
                      {
                        segment_id;
                        backing_port;
                        offset = chunk.Memory_object.range.Accent_mem.Vaddr.lo;
                      };
                })
      in
      (Message.with_memory msg (Some memory), true)
  | _ -> (msg, false)

let iou_chunks msg =
  match msg.Message.memory with
  | None -> 0
  | Some m ->
      List.length
        (List.filter
           (fun c ->
             match c.Memory_object.content with
             | Memory_object.Iou _ -> true
             | Memory_object.Data _ | Memory_object.Digest_refs _ -> false)
           m)

(* A completed inbound message enters the local kernel.  With dedup on,
   imaginary read replies populate the content store on receipt first:
   each page is re-hashed and kept only if the bytes match their name
   (Content_store.insert_wire), so future digest-first transfers of the
   same content can elide it. *)
let deliver_local t msg =
  (if t.params.dedup then
     match msg.Message.payload with
     | Protocol.Imaginary_read_reply { page_data; _ } ->
         List.iter
           (fun v -> ignore (Content_store.insert_wire t.cache v))
           page_data
     | _ -> ());
  Kernel_ipc.send t.kernel msg

(* Inbound: one fragment arrived off the wire.  Reassembly cost is charged
   per fragment; the per-message costs (stand-in creation for IOU chunks,
   chunk table processing) are charged with the last fragment, after which
   the whole message enters the local kernel. *)
let receive t (frag : Net_registry.fragment) =
  let msg = frag.Net_registry.msg in
  let last = frag.Net_registry.index = frag.Net_registry.count - 1 in
  if last then t.handled <- t.handled + 1;
  let cost =
    t.params.base_ms
    +. (t.params.per_byte_ms *. float_of_int frag.Net_registry.wire_bytes)
    +.
    if last then
      (t.params.per_chunk_ms *. float_of_int (chunk_count msg))
      +. (t.params.stand_in_per_chunk_ms *. float_of_int (iou_chunks msg))
    else 0.
  in
  Queue_server.submit t.cpu ~service_time:(Time.ms cost) (fun () ->
      if last then deliver_local t msg;
      frag.Net_registry.ack ())

(* Outbound: the kernel had no local receiver; route over the network.
   The message is cut into link-packet-sized fragments and each is pushed
   through this NMS's CPU, the medium, and the peer NMS's CPU in turn, so
   large transfers occupy the wire for their true duration instead of
   appearing as an instantaneous burst after one big CPU charge. *)
let forward t msg =
  match Net_registry.port_home t.registry msg.Message.dest with
  | None ->
      Logs.warn (fun m ->
          m "NMS%d: no home for %a; dropping" t.host_id Port.pp
            msg.Message.dest)
  | Some dest_host when dest_host = t.host_id ->
      Logs.warn (fun m ->
          m "NMS%d: %a homed here but unbound; dropping" t.host_id Port.pp
            msg.Message.dest)
  | Some dest_host ->
      t.handled <- t.handled + 1;
      let bytes_before = t.cached_bytes in
      let msg, cached = substitute_ious t msg in
      let setup =
        if cached then
          t.params.iou_cache_setup_ms
          +. t.params.cache_per_page_ms
             *. float_of_int
                  ((t.cached_bytes - bytes_before) / Accent_mem.Page.size)
        else 0.
      in
      Transfer_monitor.note_message t.monitor ~category:msg.Message.category;
      let wire = Message.wire_size msg in
      match t.rel with
      | Some rel ->
          (* reliable transport: sequencing, retransmission and real acks
             live in [Reliable]; we only contribute the cost model *)
          Reliable.send rel ~dst:dest_host ~msg ~wire_bytes:wire
            ~first_fragment_extra_ms:
              (setup +. (t.params.per_chunk_ms *. float_of_int (chunk_count msg)))
      | None ->
          let link_params = Link.params_of t.link in
          let payload = link_params.Link.fragment_bytes in
          let count = max 1 ((wire + payload - 1) / payload) in
          let window = max 1 t.params.flow_window in
          (* sliding window: up to [window] fragments may be unacknowledged.
             window = 1 is classic stop-and-wait. *)
          let next = ref 0 in
          let rec send_fragment () =
            if !next < count then begin
              let index = !next in
              next := index + 1;
              let wire_bytes = min payload (wire - (index * payload)) in
              let cost =
                t.params.base_ms
                +. (t.params.per_byte_ms *. float_of_int wire_bytes)
                +.
                if index = 0 then
                  setup
                  +. (t.params.per_chunk_ms *. float_of_int (chunk_count msg))
                else 0.
              in
              Queue_server.submit t.cpu ~service_time:(Time.ms cost) (fun () ->
                  Link.transmit t.link ~bytes:wire_bytes
                    ~category:msg.Message.category (fun () ->
                      let ack () =
                        (* the acknowledgement rides back after one link
                           latency, releasing the next window slot *)
                        ignore
                          (Engine.schedule t.engine
                             ~delay:(Time.ms link_params.Link.latency_ms)
                             send_fragment)
                      in
                      Net_registry.deliver_to t.registry ~host_id:dest_host
                        { Net_registry.msg; index; count; wire_bytes; ack }))
            end
          in
          for _ = 1 to window do
            send_fragment ()
          done

let create engine ~ids ~host_id ~kernel ~link ~registry ~monitor ~params =
  let t =
    {
      engine;
      ids;
      host_id;
      kernel;
      link;
      registry;
      monitor;
      params;
      cpu = Queue_server.create engine ~name:(Printf.sprintf "nms%d" host_id);
      cache =
        Content_store.create ~dedup:params.dedup
          ~capacity_pages:params.dedup_capacity_pages ();
      backing_ports = Hashtbl.create 16;
      handled = 0;
      cached_bytes = 0;
      faults_served = 0;
      pages_served = 0;
      rel = None;
      give_up_handlers = [];
      transport_give_ups = 0;
    }
  in
  Kernel_ipc.set_forwarder kernel (forward t);
  Net_registry.register_host registry ~host_id ~deliver:(receive t);
  (match params.arq with
  | None -> ()
  | Some arq_params ->
      t.rel <-
        Some
          (Reliable.create engine ~host_id ~link ~registry ~params:arq_params
             ~cpu:(fun ~service_ms k ->
               Queue_server.submit t.cpu ~service_time:(Time.ms service_ms) k)
             ~fragment_cost_ms:(fun ~bytes ->
               params.base_ms +. (params.per_byte_ms *. float_of_int bytes))
             ~on_deliver:(fun ~msg ~wire_bytes ~completes ->
               if completes then t.handled <- t.handled + 1;
               let cost =
                 params.base_ms
                 +. (params.per_byte_ms *. float_of_int wire_bytes)
                 +.
                 if completes then
                   (params.per_chunk_ms *. float_of_int (chunk_count msg))
                   +. (params.stand_in_per_chunk_ms
                      *. float_of_int (iou_chunks msg))
                 else 0.
               in
               Queue_server.submit t.cpu ~service_time:(Time.ms cost)
                 (fun () -> if completes then deliver_local t msg))
             ~on_give_up:(fun ~msg ~dst:_ ->
               t.transport_give_ups <- t.transport_give_ups + 1;
               Logs.warn (fun m ->
                   m "NMS%d: transport gave up on %s message to %a" t.host_id
                     (Message.category_name msg.Message.category)
                     Port.pp msg.Message.dest);
               List.iter (fun h -> h msg) (List.rev t.give_up_handlers))));
  t

let busy_time t = Queue_server.busy_time t.cpu
let messages_handled t = t.handled
let reliability t = t.rel
let content_store t = t.cache
let dedup_enabled t = t.params.dedup

let on_transport_give_up t handler =
  t.give_up_handlers <- handler :: t.give_up_handlers

let transport_give_ups t = t.transport_give_ups
let bytes_cached t = t.cached_bytes
let segments_backed t = Hashtbl.length t.backing_ports
let faults_served t = t.faults_served
let pages_served t = t.pages_served

let reset_accounting t =
  Queue_server.reset_accounting t.cpu;
  t.handled <- 0;
  t.cached_bytes <- 0;
  t.faults_served <- 0;
  t.pages_served <- 0;
  t.transport_give_ups <- 0;
  Option.iter Reliable.reset_accounting t.rel

let fail_backing t =
  let segments = Hashtbl.fold (fun s _ acc -> s :: acc) t.backing_ports [] in
  List.iter (drop_segment t) segments
