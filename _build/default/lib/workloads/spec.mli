(** Workload specifications and the state builder.

    A spec captures a program {e at its migration point}: the paper's
    Tables 4-1 and 4-2 give the address-space composition and resident set
    directly, Table 4-3 and the §4.3.3 discussion pin down how much of the
    space the program goes on to touch and in what pattern.  [build]
    reconstructs that state on a host — real page contents (deterministic
    and checksummable), scattered across the address space in [real_runs]
    runs, with the resident set promoted into physical memory — and
    attaches the post-migration reference trace. *)

type t = {
  name : string;
  description : string;
  real_bytes : int;  (** Table 4-1 "Real" *)
  total_bytes : int;  (** Table 4-1 "Total" *)
  rs_bytes : int;  (** Table 4-2 "RS Size" *)
  touched_real_pages : int;
      (** distinct RealMem pages the program touches after migration
          (Table 4-3 IOU column × Real) *)
  rs_touched_overlap : int;
      (** how many of those are in the resident set — controls how useful
          resident-set shipment is (Table 4-3 RS column).  Must satisfy
          [rs_pages - overlap <= real_pages - touched]: the rest of the
          resident set is drawn from untouched pages. *)
  real_runs : int;  (** scatter of real data across the space *)
  vm_segments : int;
      (** distinct VM segments (program text, mapped files...); drives the
          AMap-construction cost of Table 4-4 *)
  pattern : Access_pattern.t;
  refs : int;  (** post-migration references (≥ touched pages) *)
  total_think_ms : float;  (** pure compute time of the remote execution *)
  zero_touch_pages : int;
      (** allocated-but-untouched pages the program will dirty (stack
          growth etc. — FillZero faults at the new site) *)
  base_addr : int;
}

val realz_bytes : t -> int
(** [total_bytes - real_bytes]: the RealZeroMem of Table 4-1. *)

val real_pages : t -> int
val rs_pages : t -> int

val content_tag : t -> int
(** Tag from which all the workload's page contents derive; a page's bytes
    are [Page.pattern ~tag idx], so any copy anywhere can be verified. *)

val build :
  ?write_fraction:float -> Accent_kernel.Host.t -> t -> Accent_kernel.Proc.t
(** Construct the space and process on the host.  Post-condition (checked):
    the space's Real/RealZero/Total/resident byte counts equal the spec's
    exactly.  [write_fraction] (default 0) marks that share of the trace's
    references as stores — relevant to the pre-copy baseline, which must
    re-send dirtied pages. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent parameters (sizes not
    page-multiples, overlap larger than the touched or resident sets...). *)
