open Accent_sim
open Accent_kernel

type params = {
  period_ms : float;
  raise_threshold : float;
  lower_threshold : float;
  min_prefetch : int;
  max_prefetch : int;
}

let default_params =
  {
    period_ms = 500.;
    raise_threshold = 0.7;
    lower_threshold = 0.35;
    min_prefetch = 1;
    max_prefetch = 15;
  }

type t = {
  engine : Engine.t;
  proc : Proc.t;
  params : params;
  mutable last_extra : int;
  mutable last_hits : int;
  mutable adjustments : int;
  mutable trajectory : (float * int) list; (* reversed *)
}

let clamp t v = max t.params.min_prefetch (min t.params.max_prefetch v)

let sample t =
  let de = t.proc.Proc.prefetch_extra - t.last_extra in
  let dh = t.proc.Proc.prefetch_hits - t.last_hits in
  t.last_extra <- t.proc.Proc.prefetch_extra;
  t.last_hits <- t.proc.Proc.prefetch_hits;
  (* too few new prefetched pages carry no signal; hold *)
  if de >= 4 then begin
    let ratio = float_of_int dh /. float_of_int de in
    let current = t.proc.Proc.prefetch in
    let next =
      if ratio >= t.params.raise_threshold then clamp t ((2 * current) + 1)
      else if ratio <= t.params.lower_threshold then clamp t (current / 2)
      else current
    in
    if next <> current then begin
      t.proc.Proc.prefetch <- next;
      t.adjustments <- t.adjustments + 1
    end
  end;
  t.trajectory <-
    (Time.to_ms (Engine.now t.engine), t.proc.Proc.prefetch) :: t.trajectory

let rec tick t =
  match t.proc.Proc.pcb.Pcb.status with
  | Pcb.Running | Pcb.Ready ->
      sample t;
      ignore
        (Engine.schedule t.engine ~delay:(Time.ms t.params.period_ms)
           (fun () -> tick t))
  | Pcb.Blocked | Pcb.Terminated | Pcb.Excised -> ()

let attach ?(params = default_params) engine proc =
  let t =
    {
      engine;
      proc;
      params;
      last_extra = proc.Proc.prefetch_extra;
      last_hits = proc.Proc.prefetch_hits;
      adjustments = 0;
      trajectory = [];
    }
  in
  proc.Proc.prefetch <- clamp t proc.Proc.prefetch;
  ignore (Engine.schedule engine ~delay:(Time.ms params.period_ms) (fun () -> tick t));
  t

let adjustments t = t.adjustments
let trajectory t = List.rev t.trajectory
