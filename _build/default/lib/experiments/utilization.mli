(** Per-host resource utilisation over a trial — where the machines'
    time actually went (§4.4.3's "distribution of costs" from the hosts'
    point of view rather than the wire's). *)

type host_row = {
  host : string;
  nms_busy_s : float;  (** NetMsgServer CPU *)
  kernel_busy_s : float;  (** kernel IPC CPU *)
  exec_busy_s : float;  (** user computation *)
  disk_busy_s : float;
  nms_messages : int;
}

val of_world : Accent_core.World.t -> host_row list

val render : duration_s:float -> host_row list -> string
(** Table with busy fractions relative to the trial duration. *)
