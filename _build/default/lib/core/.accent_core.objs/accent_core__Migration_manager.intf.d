lib/core/migration_manager.mli: Accent_ipc Accent_kernel Backing_server Report Strategy
