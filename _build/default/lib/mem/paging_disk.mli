(** The local paging disk of one host.

    Stores page images evicted from physical memory and the backing blocks
    of RealMem data.  Purely a content store — the 40.8 ms service time of a
    disk fault is charged by the kernel's cost model, and queueing for the
    disk arm is modelled with a {!Accent_sim.Queue_server} at the host
    level. *)

type t
type block_id = int

val create : unit -> t

val alloc : t -> Page.data -> block_id
(** Store a copy of the page and return its block. *)

val read : t -> block_id -> Page.data
(** A copy of the block's contents. *)

val write : t -> block_id -> Page.data -> unit
val free : t -> block_id -> unit

val blocks_in_use : t -> int
val bytes_in_use : t -> int
