type frame_id = int
type owner = { space_id : int; page : Page.index }

type frame = {
  mutable owner : owner;
  mutable data : Page.value;
  mutable dirty : bool;
  mutable pinned : bool;
  mutable last_use : int; (* LRU clock stamp *)
}

(* Frames live in a dense array indexed by id (ids are recycled through
   the free list, so the array never outgrows the pool's high-water
   mark).  Freed slots point at [no_frame], a shared sentinel, so the
   hot-path lookup is one bounds-checked load — the Hashtbl this
   replaces cost a hash, a bucket walk and an option box per touch.

   The LRU is a lazy-invalidation min-heap of plain ints: each entry
   packs (stamp, frame id) into one immediate word.  There are no
   cancellation handles; an entry is live iff the frame it names still
   holds the stamp it was pushed with (stamps are unique, the clock
   ticks on every bump) and is not pinned.  A recency bump therefore
   allocates nothing: it writes the new stamp into the frame and pushes
   one int.  Stale entries are skipped at pop and squeezed out when
   they outnumber the live ones, exactly the event queue's compaction
   rule, and the strict total order on stamps keeps the victim sequence
   identical to the handle-based heap this replaces. *)

type t = {
  capacity : int;
  mutable slots : frame array; (* dense by id; [no_frame] marks free slots *)
  mutable in_use : int;
  mutable free_list : frame_id list;
  mutable next_id : int;
  mutable clock : int;
  mutable evict : (owner -> Page.value -> dirty:bool -> unit) option;
  mutable evictions : int;
  (* space_id -> page -> frame, for O(1) resident-set queries *)
  by_space : (int, (Page.index, frame_id) Hashtbl.t) Hashtbl.t;
  mutable lru : int array; (* packed (stamp, id); slots >= lru_len stale *)
  mutable lru_len : int;
  mutable lru_live : int; (* unpinned live frames = live heap entries *)
}

(* Frame ids fit 20 bits (pools are bounded in [create]); stamps are
   unique, so the packed key preserves stamp order with the frame id as
   a vestigial tie-break. *)
let id_bits = 20
let lru_key stamp id = (stamp lsl id_bits) lor id
let lru_id key = key land ((1 lsl id_bits) - 1)
let lru_stamp key = key lsr id_bits

let no_owner = { space_id = -1; page = -1 }

let no_frame =
  {
    owner = no_owner;
    data = Page.zero_value;
    dirty = false;
    pinned = false;
    last_use = -1;
  }

let create ~frames =
  assert (frames > 0 && frames < 1 lsl id_bits);
  {
    capacity = frames;
    slots = [||];
    in_use = 0;
    free_list = [];
    next_id = 0;
    clock = 0;
    evict = None;
    evictions = 0;
    by_space = Hashtbl.create 16;
    lru = [||];
    lru_len = 0;
    lru_live = 0;
  }

let set_evict_handler t f = t.evict <- Some f
let capacity t = t.capacity
let in_use t = t.in_use
let free_frames t = t.capacity - t.in_use

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* --- the stamp-validated LRU heap -------------------------------------- *)

(* Live iff the named frame still carries this stamp and is evictable.
   A freed slot holds [no_frame] (stamp -1), a recycled id carries a
   younger stamp, a pinned frame sits out until unpinned. *)
let entry_live t key =
  let f = t.slots.(lru_id key) in
  f.last_use = lru_stamp key && not f.pinned

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.lru.(i) < t.lru.(parent) then begin
      let tmp = t.lru.(i) in
      t.lru.(i) <- t.lru.(parent);
      t.lru.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.lru_len && t.lru.(l) < t.lru.(!smallest) then smallest := l;
  if r < t.lru_len && t.lru.(r) < t.lru.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.lru.(i) in
    t.lru.(i) <- t.lru.(!smallest);
    t.lru.(!smallest) <- tmp;
    sift_down t !smallest
  end

let heap_compact t =
  let kept = ref 0 in
  for i = 0 to t.lru_len - 1 do
    let key = t.lru.(i) in
    if entry_live t key then begin
      t.lru.(!kept) <- key;
      incr kept
    end
  done;
  t.lru_len <- !kept;
  for i = (t.lru_len / 2) - 1 downto 0 do
    sift_down t i
  done

let heap_push t key =
  (if t.lru_len = Array.length t.lru then begin
     let cap' = max 16 (2 * t.lru_len) in
     let lru = Array.make cap' 0 in
     Array.blit t.lru 0 lru 0 t.lru_len;
     t.lru <- lru
   end);
  t.lru.(t.lru_len) <- key;
  t.lru_len <- t.lru_len + 1;
  sift_up t (t.lru_len - 1)

let heap_drop_root t =
  t.lru_len <- t.lru_len - 1;
  if t.lru_len > 0 then begin
    t.lru.(0) <- t.lru.(t.lru_len);
    sift_down t 0
  end

(* Drop stale roots until the top is live; -1 when nothing evictable. *)
let rec heap_top t =
  if t.lru_len = 0 then -1
  else begin
    let key = t.lru.(0) in
    if entry_live t key then key
    else begin
      heap_drop_root t;
      heap_top t
    end
  end

let maybe_compact t =
  if t.lru_len >= 64 && t.lru_len - t.lru_live > t.lru_live then heap_compact t

let bump t id f =
  f.last_use <- tick t;
  if not f.pinned then begin
    heap_push t (lru_key f.last_use id);
    maybe_compact t
  end

(* --- frames ------------------------------------------------------------ *)

let index_owner t owner id =
  let tbl =
    match Hashtbl.find_opt t.by_space owner.space_id with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 64 in
        Hashtbl.replace t.by_space owner.space_id tbl;
        tbl
  in
  Hashtbl.replace tbl owner.page id

let unindex_owner t owner =
  match Hashtbl.find_opt t.by_space owner.space_id with
  | None -> ()
  | Some tbl ->
      Hashtbl.remove tbl owner.page;
      if Hashtbl.length tbl = 0 then Hashtbl.remove t.by_space owner.space_id

let find_frame t id =
  if id < 0 || id >= t.next_id then invalid_arg "Phys_mem: unknown frame"
  else begin
    let f = t.slots.(id) in
    if f == no_frame then invalid_arg "Phys_mem: unknown frame" else f
  end

let choose_victim t =
  let key = heap_top t in
  if key < 0 then None else Some (lru_id key)

let release_slot t id f =
  if not f.pinned then t.lru_live <- t.lru_live - 1;
  unindex_owner t f.owner;
  t.slots.(id) <- no_frame;
  t.in_use <- t.in_use - 1;
  t.free_list <- id :: t.free_list

let evict_one t =
  let key = heap_top t in
  if key < 0 then failwith "Phys_mem: all frames pinned, cannot evict"
  else begin
    let id = lru_id key in
    let f = t.slots.(id) in
    (match t.evict with
    | Some handler -> handler f.owner f.data ~dirty:f.dirty
    | None -> failwith "Phys_mem: pool full and no evict handler set");
    t.evictions <- t.evictions + 1;
    heap_drop_root t;
    release_slot t id f
  end

let allocate t ~owner data =
  if t.in_use >= t.capacity then evict_one t;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        id
    | [] ->
        let id = t.next_id in
        t.next_id <- id + 1;
        (if id = Array.length t.slots then begin
           let cap' = max 16 (2 * id) in
           let slots = Array.make cap' no_frame in
           Array.blit t.slots 0 slots 0 id;
           t.slots <- slots
         end);
        id
  in
  let f = { owner; data; dirty = false; pinned = false; last_use = tick t } in
  t.slots.(id) <- f;
  t.in_use <- t.in_use + 1;
  t.lru_live <- t.lru_live + 1;
  heap_push t (lru_key f.last_use id);
  maybe_compact t;
  index_owner t owner id;
  id

let free t id =
  let f = find_frame t id in
  release_slot t id f;
  maybe_compact t

let read t id =
  let f = find_frame t id in
  bump t id f;
  f.data

let peek t id = (find_frame t id).data

let write t id data =
  let f = find_frame t id in
  f.data <- data;
  f.dirty <- true;
  bump t id f

let touch t id =
  let f = find_frame t id in
  bump t id f

let pin t id =
  let f = find_frame t id in
  if not f.pinned then begin
    f.pinned <- true;
    t.lru_live <- t.lru_live - 1
  end

let unpin t id =
  let f = find_frame t id in
  if f.pinned then begin
    f.pinned <- false;
    t.lru_live <- t.lru_live + 1;
    (* re-enter at the original stamp: unpinning must not look like a
       reference, or pinning would distort eviction order *)
    heap_push t (lru_key f.last_use id);
    maybe_compact t
  end

let owner_of t id = (find_frame t id).owner
let is_dirty t id = (find_frame t id).dirty

let frames_of_space t space_id =
  match Hashtbl.find_opt t.by_space space_id with
  | None -> []
  | Some tbl ->
      (* array sort: a resident set is ~10^3 entries and this runs on
         every excision, where a list merge sort's O(n log n) cons cells
         dominate the capture's allocation *)
      let a = Array.make (Hashtbl.length tbl) (0, 0) in
      let i = ref 0 in
      Hashtbl.iter
        (fun page id ->
          a.(!i) <- (page, id);
          incr i)
        tbl;
      Array.sort
        (fun ((pa : int), (ia : int)) (pb, ib) ->
          if pa < pb then -1
          else if pa > pb then 1
          else if ia < ib then -1
          else if ia > ib then 1
          else 0)
        a;
      Array.to_list a

let resident_count t space_id =
  match Hashtbl.find_opt t.by_space space_id with
  | None -> 0
  | Some tbl -> Hashtbl.length tbl

let evictions t = t.evictions
