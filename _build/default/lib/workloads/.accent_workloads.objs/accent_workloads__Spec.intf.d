lib/workloads/spec.mli: Accent_kernel Access_pattern
