lib/sim/event_queue.mli: Time
