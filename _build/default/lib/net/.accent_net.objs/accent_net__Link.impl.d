lib/net/link.ml: Accent_sim Engine Queue_server Time Transfer_monitor
