type row_4_5 = { name : string; iou_s : float; rs_s : float; copy_s : float }

let table_4_4 =
  [
    ("Minprog", 0.37, 0.36, 0.82);
    ("Lisp-T", 2.12, 0.59, 2.79);
    ("Lisp-Del", 2.46, 0.73, 3.38);
    ("PM-Start", 0.98, 0.63, 1.67);
    ("PM-Mid", 1.01, 0.68, 1.74);
    ("PM-End", 1.4, 0.94, 2.45);
    ("Chess", 0.37, 0.43, 1.00);
  ]

let table_4_5 =
  [
    { name = "Minprog"; iou_s = 0.16; rs_s = 5.0; copy_s = 8.5 };
    { name = "Lisp-T"; iou_s = 0.16; rs_s = 25.8; copy_s = 157.0 };
    { name = "Lisp-Del"; iou_s = 0.17; rs_s = 25.8; copy_s = 168.5 };
    { name = "PM-Start"; iou_s = 0.15; rs_s = 9.0; copy_s = 30.8 };
    { name = "PM-Mid"; iou_s = 0.16; rs_s = 13.0; copy_s = 28.1 };
    { name = "PM-End"; iou_s = 0.19; rs_s = 20.5; copy_s = 31.0 };
    { name = "Chess"; iou_s = 0.21; rs_s = 7.7; copy_s = 11.7 };
  ]

let insert_range_s = (0.263, 0.853)
let byte_savings_pct = 58.2
let message_cost_savings_pct = 47.8
let remote_fault_ms = 115.
let local_disk_fault_ms = 40.8
let minprog_iou_slowdown = 44.
let chess_iou_penalty_pct = 3.
let pasmac_hit_ratio = 0.78
let lisp_hit_ratio_range = (0.40, 0.20)
