open Accent_util
open Accent_mem
open Accent_kernel

type t = {
  name : string;
  description : string;
  real_bytes : int;
  total_bytes : int;
  rs_bytes : int;
  touched_real_pages : int;
  rs_touched_overlap : int;
  real_runs : int;
  vm_segments : int;
  pattern : Access_pattern.t;
  refs : int;
  total_think_ms : float;
  zero_touch_pages : int;
  base_addr : int;
}

let realz_bytes t = t.total_bytes - t.real_bytes
let real_pages t = t.real_bytes / Page.size
let rs_pages t = t.rs_bytes / Page.size

let content_tag t =
  (* stable across runs: derived from the name only *)
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 t.name
  land 0x3FFFFFFF

let validate t =
  let page_multiple label n =
    if n mod Page.size <> 0 then
      invalid_arg (Printf.sprintf "%s: %s not a page multiple" t.name label)
  in
  page_multiple "real_bytes" t.real_bytes;
  page_multiple "total_bytes" t.total_bytes;
  page_multiple "rs_bytes" t.rs_bytes;
  page_multiple "base_addr" t.base_addr;
  if t.real_bytes <= 0 || t.total_bytes < t.real_bytes then
    invalid_arg (t.name ^ ": inconsistent real/total");
  if t.rs_bytes > t.real_bytes then invalid_arg (t.name ^ ": RS > Real");
  if t.touched_real_pages > real_pages t then
    invalid_arg (t.name ^ ": touched > real pages");
  if
    t.rs_touched_overlap > t.touched_real_pages
    || t.rs_touched_overlap > rs_pages t
  then invalid_arg (t.name ^ ": overlap too large");
  (* the RS pages outside the overlap must come from untouched pages *)
  if rs_pages t - t.rs_touched_overlap > real_pages t - t.touched_real_pages
  then invalid_arg (t.name ^ ": overlap too small for this RS size");
  if t.refs < t.touched_real_pages then
    invalid_arg (t.name ^ ": refs < touched pages");
  if t.real_runs < 1 || t.vm_segments < 1 then
    invalid_arg (t.name ^ ": runs/segments must be positive");
  if t.base_addr + t.total_bytes > Vaddr.space_limit then
    invalid_arg (t.name ^ ": exceeds the 4 GB space")

(* Split [total] into [parts] integer shares, largest-first remainders. *)
let shares total parts =
  let parts = max 1 parts in
  let base = total / parts and extra = total mod parts in
  List.init parts (fun i -> base + if i < extra then 1 else 0)

(* Lay the space out as gap/run/gap/run/.../gap and install run contents
   (straight to the paging disk, like data faulted in long ago). *)
let build_layout space t =
  let tag = content_tag t in
  let runs = min t.real_runs (real_pages t) in
  let run_sizes = Array.of_list (shares (real_pages t) runs) in
  let gap_sizes =
    Array.of_list (shares (realz_bytes t / Page.size) (runs + 1))
  in
  let universe = Array.make (real_pages t) 0 in
  let u_fill = ref 0 in
  let zero_candidates = ref [] in
  let slices = max runs t.vm_segments in
  let slice_counter = ref 0 in
  let addr = ref t.base_addr in
  let emit_gap pages =
    if pages > 0 then begin
      Address_space.validate_zero space (Vaddr.of_len !addr (pages * Page.size));
      zero_candidates := Page.index_of_addr !addr :: !zero_candidates;
      addr := !addr + (pages * Page.size)
    end
  in
  let emit_run i pages =
    (* each run is cut into label slices so the space carries exactly
       [vm_segments] distinct VM segments overall *)
    let run_slices =
      let total = max 1 (real_pages t) in
      max 1 (((slices * pages) + total - 1) / total)
    in
    let run_slices = min run_slices pages in
    List.iter
      (fun slice_pages ->
        if slice_pages > 0 then begin
          let label =
            Printf.sprintf "seg%d" (!slice_counter mod t.vm_segments)
          in
          incr slice_counter;
          let values = Array.make slice_pages Page.zero_value in
          for p = 0 to slice_pages - 1 do
            let idx = Page.index_of_addr !addr + p in
            universe.(!u_fill) <- idx;
            incr u_fill;
            values.(p) <- Page.pattern_value ~tag idx
          done;
          Address_space.install_values ~segment:label space ~addr:!addr values
            ~resident:false;
          addr := !addr + (slice_pages * Page.size)
        end)
      (shares pages run_slices);
    ignore i
  in
  Array.iteri
    (fun i run_pages ->
      emit_gap gap_sizes.(i);
      emit_run i run_pages)
    run_sizes;
  emit_gap gap_sizes.(runs);
  assert (!u_fill = real_pages t);
  (universe, List.rev !zero_candidates)

(* Pick [k] elements of [arr] spread evenly, excluding [excluded]. *)
let spread_pick arr k ~excluded =
  let eligible = Array.make (max 1 (Array.length arr)) 0 in
  let fill = ref 0 in
  Array.iter
    (fun x ->
      if not (Hashtbl.mem excluded x) then begin
        eligible.(!fill) <- x;
        incr fill
      end)
    arr;
  let n = !fill in
  if k > n then invalid_arg "spread_pick: not enough eligible elements";
  List.init k (fun i -> eligible.(i * n / max 1 k))

let promote_resident space t ~universe ~touched =
  let touched_set = Hashtbl.create (Array.length touched) in
  Array.iter (fun p -> Hashtbl.replace touched_set p ()) touched;
  let from_touched =
    spread_pick touched t.rs_touched_overlap ~excluded:(Hashtbl.create 0)
  in
  let rest = rs_pages t - t.rs_touched_overlap in
  let from_untouched = spread_pick universe rest ~excluded:touched_set in
  let resident = List.sort_uniq compare (from_touched @ from_untouched) in
  assert (List.length resident = rs_pages t);
  List.iter (fun idx -> Address_space.resolve_disk_fault space idx) resident

(* Interleave FillZero touches (stack growth and the like) into the trace
   at evenly-spread positions. *)
let add_zero_touches ~rng t ~zero_candidates steps =
  let z = min t.zero_touch_pages (List.length zero_candidates) in
  if z = 0 then steps
  else begin
    let candidates = Array.of_list zero_candidates in
    Rng.shuffle rng candidates;
    let steps = Array.of_list steps in
    let n = Array.length steps in
    let insertions =
      List.init z (fun i ->
          ( (i + 1) * n / (z + 1),
            { Trace.page = candidates.(i); think_ms = 1.0; write = false } ))
    in
    let out = ref [] in
    Array.iteri
      (fun i s ->
        List.iter
          (fun (pos, step) -> if pos = i then out := step :: !out)
          insertions;
        out := s :: !out)
      steps;
    List.rev !out
  end

let build ?(write_fraction = 0.) host t =
  validate t;
  let rng =
    Accent_sim.Engine.rng (Host.engine host) ("workload:" ^ t.name)
  in
  let space = Host.new_space host ~name:t.name in
  let universe, zero_candidates = build_layout space t in
  let touched =
    Access_pattern.choose_touched t.pattern ~rng ~universe
      ~count:t.touched_real_pages
  in
  promote_resident space t ~universe ~touched;
  let steps =
    Access_pattern.generate t.pattern ~rng ~touched ~refs:t.refs
      ~total_think_ms:t.total_think_ms
  in
  let steps = add_zero_touches ~rng t ~zero_candidates steps in
  (* Post-conditions: state matches the paper's tables exactly. *)
  assert (Address_space.real_bytes space = t.real_bytes);
  assert (Address_space.total_bytes space = t.total_bytes);
  assert (Address_space.zero_bytes space = realz_bytes t);
  (* the resident set matches the table exactly unless the host's physical
     memory is too small to hold it (the memory-pressure ablation) *)
  (let resident = Address_space.resident_bytes space in
   assert (
     resident = t.rs_bytes
     || resident < t.rs_bytes
        && Accent_mem.Phys_mem.free_frames (Host.mem host) = 0));
  let trace = Trace.of_steps steps in
  let trace =
    if write_fraction > 0. then
      Trace.with_writes ~rng ~fraction:write_fraction trace
    else trace
  in
  Host.spawn host ~name:t.name ~trace ~space ~n_ports:3 ()
