(* Failure injection: the residual-dependency hazard of lazy migration.
   A process relocated copy-on-reference depends on the source until the
   last page is fetched; if the backing site dies, so does the process.
   Pure-copy has no such window once the transfer completes. *)
open Accent_sim
open Accent_kernel
open Accent_core

let spec =
  {
    Test_helpers.small_spec with
    Accent_workloads.Spec.name = "Fragile";
    refs = 200;
    total_think_ms = 20_000.;
  }

(* Fast timeout so the tests stay quick. *)
let costs =
  { Cost_model.default with Cost_model.fault_timeout_ms = 2_000. }

let migrate_then_crash ~strategy ~crash_at =
  let world = World.create ~costs ~n_hosts:2 () in
  let proc = Accent_workloads.Spec.build (World.host world 0) spec in
  let report =
    Migration_manager.migrate (World.manager world 0) ~proc
      ~dest:(Migration_manager.port (World.manager world 1))
      ~strategy ()
  in
  ignore
    (Engine.schedule world.World.engine ~delay:(Time.ms crash_at) (fun () ->
         Accent_net.Netmsgserver.fail_backing
           (Host.nms (World.host world 0))));
  ignore (World.run world);
  let relocated =
    Option.get (Host.find_proc (World.host world 1) proc.Proc.id)
  in
  (world, relocated, report)

let test_source_crash_kills_lazy_process () =
  let world, proc, report =
    migrate_then_crash ~strategy:(Strategy.pure_iou ()) ~crash_at:4_000.
  in
  Alcotest.(check bool) "process failed" true proc.Proc.failed;
  Alcotest.(check bool) "did not complete" true
    (report.Report.completed_at = None);
  Alcotest.(check bool) "not all of the trace executed" true
    (not (Proc.is_done proc));
  Alcotest.(check bool) "a fault timed out" true
    (Pager.fault_timeouts (Host.pager (World.host world 1)) >= 1)

let test_source_crash_harmless_after_copy () =
  let _, proc, report =
    migrate_then_crash ~strategy:Strategy.pure_copy ~crash_at:4_000.
  in
  (* everything was physically shipped: the crash has nothing to take *)
  Alcotest.(check bool) "process unharmed" false proc.Proc.failed;
  Alcotest.(check bool) "completed" true (report.Report.completed_at <> None)

let test_crash_after_last_fetch_is_harmless () =
  (* crash the backer only after remote execution has finished: by then
     every page the process wanted is local and the death notice already
     retired the segment *)
  let world, proc, report =
    migrate_then_crash ~strategy:(Strategy.pure_iou ()) ~crash_at:3.0e6
  in
  ignore world;
  Alcotest.(check bool) "process unharmed" false proc.Proc.failed;
  Alcotest.(check bool) "completed" true (report.Report.completed_at <> None)

let test_timeout_counts_once_per_fault () =
  let world, proc, _ =
    migrate_then_crash ~strategy:(Strategy.pure_iou ()) ~crash_at:4_000.
  in
  ignore proc;
  (* a single blocked reference produces a single timeout, not a storm *)
  Alcotest.(check int) "exactly one timeout" 1
    (Pager.fault_timeouts (Host.pager (World.host world 1)))

let test_rs_survives_nms_crash () =
  (* under RS the non-resident remainder is backed by the MigrationManager
     itself, not the NetMsgServer cache — so crashing the NMS cache alone
     is harmless *)
  let _, proc, report =
    migrate_then_crash ~strategy:(Strategy.resident_set ()) ~crash_at:4_000.
  in
  Alcotest.(check bool) "unharmed by NMS crash" false proc.Proc.failed;
  Alcotest.(check bool) "completed" true (report.Report.completed_at <> None)

let test_rs_dies_with_its_manager_backer () =
  (* ...but if the manager's own backing server dies, the residual
     dependency bites exactly as it does for pure IOU *)
  let world = World.create ~costs ~n_hosts:2 () in
  let proc = Accent_workloads.Spec.build (World.host world 0) spec in
  let report =
    Migration_manager.migrate (World.manager world 0) ~proc
      ~dest:(Migration_manager.port (World.manager world 1))
      ~strategy:(Strategy.resident_set ()) ()
  in
  ignore
    (Engine.schedule world.World.engine ~delay:(Time.ms 4_000.) (fun () ->
         Backing_server.fail (Migration_manager.backing (World.manager world 0))));
  ignore (World.run world);
  let relocated =
    Option.get (Host.find_proc (World.host world 1) proc.Proc.id)
  in
  Alcotest.(check bool) "eventually failed" true relocated.Proc.failed;
  Alcotest.(check bool) "did not complete" true
    (report.Report.completed_at = None);
  Alcotest.(check bool) "made progress on shipped pages first" true
    (relocated.Proc.pcb.Pcb.pc > 0)

(* --- network partitions against the reliable transport ---------------- *)

let partition_world ~start_ms ~duration_ms =
  let fault_plan =
    Accent_net.Fault_plan.with_partition ~between:(0, 1) ~start_ms ~duration_ms
      Accent_net.Fault_plan.none
  in
  let world = World.create ~costs ~fault_plan ~n_hosts:2 () in
  let proc = Accent_workloads.Spec.build (World.host world 0) spec in
  (world, proc)

let test_partition_healed_before_timeout () =
  (* the partition opens while migration traffic is in flight and heals
     well inside both the retry span and the 2 s pager timeout: bounded
     retransmission must bridge it and the process must finish *)
  let world, proc = partition_world ~start_ms:300. ~duration_ms:800. in
  let report =
    World.migrate_and_run world ~proc ~src:0 ~dst:1
      ~strategy:(Strategy.pure_iou ())
  in
  Alcotest.(check bool) "completed" true (report.Report.completed_at <> None);
  Alcotest.(check bool) "outcome completed" true
    (report.Report.outcome = Report.Completed);
  Alcotest.(check bool) "the partition cost retransmissions" true
    (report.Report.retransmits > 0);
  Alcotest.(check int) "no fault timed out" 0
    (Pager.fault_timeouts (Host.pager (World.host world 1)));
  let relocated =
    Option.get (Host.find_proc (World.host world 1) proc.Proc.id)
  in
  Alcotest.(check bool) "process unharmed" false relocated.Proc.failed

let test_partition_outlasting_retries_degrades () =
  (* the partition opens after the process has restarted remotely and
     never heals in time: the transport gives up, the pager kills the
     faulting process, and the trial reports Degraded instead of hanging *)
  let world, proc = partition_world ~start_ms:1_500. ~duration_ms:100_000. in
  let report =
    World.migrate_and_run world ~proc ~src:0 ~dst:1
      ~strategy:(Strategy.pure_iou ())
  in
  Alcotest.(check bool) "did not complete" true
    (report.Report.completed_at = None);
  Alcotest.(check bool) "restarted before the cut" true
    (report.Report.restarted_at <> None);
  Alcotest.(check bool) "outcome degraded" true
    (report.Report.outcome = Report.Degraded);
  Alcotest.(check bool) "transport gave up" true
    (report.Report.transport_give_ups > 0);
  let relocated =
    Option.get (Host.find_proc (World.host world 1) proc.Proc.id)
  in
  Alcotest.(check bool) "process killed by the pager" true
    relocated.Proc.failed;
  (* the world must drain: give-up after ~5 s of retries, pager timeout at
     2 s — nothing should still be scheduled minutes later *)
  Alcotest.(check bool) "no hang" true
    (Accent_sim.Time.to_seconds (World.now world) < 120.)

let test_partition_during_transfer_aborts () =
  (* the partition covers the context transfer itself: Core and RIMAS are
     abandoned, the process never restarts anywhere remote *)
  let world, proc = partition_world ~start_ms:0. ~duration_ms:100_000. in
  let report =
    World.migrate_and_run world ~proc ~src:0 ~dst:1
      ~strategy:(Strategy.pure_iou ())
  in
  Alcotest.(check bool) "never restarted" true
    (report.Report.restarted_at = None);
  Alcotest.(check bool) "outcome aborted" true
    (report.Report.outcome = Report.Aborted);
  Alcotest.(check bool) "transport gave up" true
    (report.Report.transport_give_ups > 0);
  Alcotest.(check bool) "gave up promptly" true
    (Accent_sim.Time.to_seconds (World.now world) < 60.)

let suite =
  ( "failures",
    [
      Alcotest.test_case "source crash kills lazy process" `Quick
        test_source_crash_kills_lazy_process;
      Alcotest.test_case "crash harmless after pure copy" `Quick
        test_source_crash_harmless_after_copy;
      Alcotest.test_case "crash harmless after last fetch" `Quick
        test_crash_after_last_fetch_is_harmless;
      Alcotest.test_case "one timeout per blocked fault" `Quick
        test_timeout_counts_once_per_fault;
      Alcotest.test_case "RS survives NMS crash" `Quick
        test_rs_survives_nms_crash;
      Alcotest.test_case "RS dies with its manager backer" `Quick
        test_rs_dies_with_its_manager_backer;
      Alcotest.test_case "partition healed before timeout" `Quick
        test_partition_healed_before_timeout;
      Alcotest.test_case "partition outlasting retries degrades" `Quick
        test_partition_outlasting_retries_degrades;
      Alcotest.test_case "partition during transfer aborts" `Quick
        test_partition_during_transfer_aborts;
    ] )
