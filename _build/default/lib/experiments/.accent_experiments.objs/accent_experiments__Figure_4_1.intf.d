lib/experiments/figure_4_1.mli: Sweep Trial
