(* The price of laziness: residual dependencies.

   A process relocated copy-on-reference keeps depending on the source
   machine until the last page it will ever touch has been fetched.  This
   example migrates the same workload twice — pure-copy and pure-IOU —
   and crashes the source's backing service shortly after each migration.
   The eagerly-copied process doesn't notice; the lazy one's next page
   fetch times out and the kernel has no choice but to kill it, because
   its memory no longer exists anywhere.

   (This is the classic argument for hybrid strategies, and the reason
   CRIU's lazy-pages and post-copy VM migration ship with page-server
   redundancy options today.)

   Run with: dune exec examples/residual_dependency.exe *)

open Accent_sim
open Accent_kernel
open Accent_core

let spec =
  {
    Accent_workloads.Spec.name = "worker";
    description = "a long job with a 1 MB address space";
    real_bytes = 1024 * 1024;
    total_bytes = 2 * 1024 * 1024;
    rs_bytes = 256 * 1024;
    touched_real_pages = 600;
    rs_touched_overlap = 300;
    real_runs = 8;
    vm_segments = 4;
    pattern =
      Accent_workloads.Access_pattern.Sequential
        { streams = 2; revisit = 0.1; run = 32 };
    refs = 1_500;
    total_think_ms = 120_000.;
    zero_touch_pages = 8;
    base_addr = 0x40000;
  }

(* a 10-second fault timeout keeps the demo snappy *)
let costs =
  { Cost_model.default with Cost_model.fault_timeout_ms = 10_000. }

let run ~strategy ~crash_after_s =
  let world = World.create ~costs ~n_hosts:2 () in
  let proc = Accent_workloads.Spec.build (World.host world 0) spec in
  let report =
    Migration_manager.migrate (World.manager world 0) ~proc
      ~dest:(Migration_manager.port (World.manager world 1))
      ~strategy ()
  in
  ignore
    (Engine.schedule world.World.engine
       ~delay:(Time.seconds crash_after_s)
       (fun () ->
         Accent_net.Netmsgserver.fail_backing (Host.nms (World.host world 0))));
  ignore (World.run world);
  let relocated =
    Option.get (Host.find_proc (World.host world 1) proc.Proc.id)
  in
  (relocated, report, world)

let describe label (proc, report, world) =
  let progress =
    100 * proc.Proc.pcb.Pcb.pc / max 1 (Trace.length proc.Proc.trace)
  in
  Format.printf "  %-10s %s — %d%% of the trace executed%s@." label
    (if proc.Proc.failed then "KILLED"
     else if report.Report.completed_at <> None then "completed"
     else "stuck")
    progress
    (let timeouts =
       Accent_kernel.Pager.fault_timeouts (Host.pager (World.host world 1))
     in
     if timeouts > 0 then Printf.sprintf " (%d fault timed out)" timeouts
     else "")

let () =
  Format.printf
    "migrating a worker to host1, then crashing host0's backing service \
     60s later:@.@.";
  describe "pure-copy" (run ~strategy:Strategy.pure_copy ~crash_after_s:60.);
  describe "pure-IOU" (run ~strategy:(Strategy.pure_iou ~prefetch:1 ()) ~crash_after_s:60.);
  Format.printf
    "@.and crashing only after the lazy worker finished (no residual \
     dependency left):@.@.";
  describe "pure-IOU"
    (run ~strategy:(Strategy.pure_iou ~prefetch:1 ()) ~crash_after_s:10_000.);
  Format.printf
    "@.The IOU worker died mid-run in the first round: its unfetched pages \
     lived only in host0's cache.@.Pure copy paid 70+ seconds of transfer \
     up front but owed nothing afterwards.@."
