type block_id = int

type t = {
  blocks : (block_id, Page.value) Hashtbl.t;
  mutable next_id : int;
  mutable free_list : block_id list;
  freed : (block_id, unit) Hashtbl.t;
      (* mirrors [free_list]: blocks waiting for reuse.  Without it, a
         stale [free] of a block id that has since been recycled would
         silently push the id onto [free_list] twice and the allocator
         would hand the same block to two owners. *)
}

let create () =
  {
    blocks = Hashtbl.create 1024;
    next_id = 0;
    free_list = [];
    freed = Hashtbl.create 64;
  }

let alloc t value =
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        Hashtbl.remove t.freed id;
        id
    | [] ->
        let id = t.next_id in
        t.next_id <- id + 1;
        id
  in
  Hashtbl.replace t.blocks id value;
  id

let find t id =
  match Hashtbl.find_opt t.blocks id with
  | Some value -> value
  | None ->
      if Hashtbl.mem t.freed id then
        invalid_arg "Paging_disk: block already freed"
      else invalid_arg "Paging_disk: unknown block"

let read t id = find t id

let write t id value =
  ignore (find t id);
  Hashtbl.replace t.blocks id value

let free t id =
  if Hashtbl.mem t.freed id then
    invalid_arg "Paging_disk.free: double free"
  else if not (Hashtbl.mem t.blocks id) then
    invalid_arg "Paging_disk.free: unknown block"
  else begin
    Hashtbl.remove t.blocks id;
    Hashtbl.replace t.freed id ();
    t.free_list <- id :: t.free_list
  end

let blocks_in_use t = Hashtbl.length t.blocks
let bytes_in_use t = blocks_in_use t * Page.size
