open Accent_sim

type params = {
  local_base_ms : float;
  copy_threshold : int;
  copy_per_byte_ms : float;
  map_per_page_ms : float;
}

(* Calibrated so that a small control message costs ~1.2 ms of kernel time
   and mapping a whole excised address space costs milliseconds, not the
   seconds a physical copy would. *)
let default_params =
  {
    local_base_ms = 1.2;
    copy_threshold = 2048;
    copy_per_byte_ms = 0.0006;
    map_per_page_ms = 0.01;
  }

type t = {
  engine : Engine.t;
  cpu : Queue_server.t;
  params : params;
  handlers : (Message.t -> unit) Port.Table.t;
  mutable forwarder : (Message.t -> unit) option;
  mutable sent : int;
  mutable local : int;
  mutable forwarded : int;
}

let create engine ~cpu params =
  {
    engine;
    cpu;
    params;
    handlers = Port.Table.create 64;
    forwarder = None;
    sent = 0;
    local = 0;
    forwarded = 0;
  }

let bind t port handler = Port.Table.replace t.handlers port handler
let unbind t port = Port.Table.remove t.handlers port
let has_local_receiver t port = Port.Table.mem t.handlers port
let set_forwarder t f = t.forwarder <- Some f

let handling_cost params msg =
  (* IOU chunks carry no local pages until touched, so the kernel's
     copy/map work scales with the physically-present bytes (plus
     descriptors), not with the promised ranges. *)
  let size = Message.wire_size msg in
  let data_cost =
    if size <= params.copy_threshold then
      (* Double-copy semantics: in and out of the kernel. *)
      2. *. float_of_int size *. params.copy_per_byte_ms
    else
      let pages = (size + Accent_mem.Page.size - 1) / Accent_mem.Page.size in
      float_of_int pages *. params.map_per_page_ms
  in
  Time.ms (params.local_base_ms +. data_cost)

let send t msg =
  t.sent <- t.sent + 1;
  let cost = handling_cost t.params msg in
  Queue_server.submit t.cpu ~service_time:cost (fun () ->
      match Port.Table.find_opt t.handlers msg.Message.dest with
      | Some handler ->
          t.local <- t.local + 1;
          handler msg
      | None -> (
          match t.forwarder with
          | Some forward ->
              t.forwarded <- t.forwarded + 1;
              forward msg
          | None ->
              Logs.warn (fun m ->
                  m "dropping message for unbound %a at t=%a" Port.pp
                    msg.Message.dest Time.pp (Engine.now t.engine))))

let sent t = t.sent
let delivered_locally t = t.local
let forwarded t = t.forwarded
