type step = { page : Accent_mem.Page.index; think_ms : float; write : bool }
type t = step array

let step_read ?(think_ms = 0.) page = { page; think_ms; write = false }
let step_write ?(think_ms = 0.) page = { page; think_ms; write = true }
let of_steps steps = Array.of_list steps
let of_array = Fun.id
let length = Array.length
let step t i = t.(i)

let total_think_ms t =
  Array.fold_left (fun acc s -> acc +. s.think_ms) 0. t

let pages t =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  Array.iter
    (fun s ->
      if not (Hashtbl.mem seen s.page) then begin
        Hashtbl.replace seen s.page ();
        order := s.page :: !order
      end)
    t;
  List.rev !order

let distinct_pages t = List.length (pages t)
let concat a b = Array.append a b
let iter t ~f = Array.iter f t

let write_count t =
  Array.fold_left (fun acc s -> if s.write then acc + 1 else acc) 0 t

let with_writes ~rng ~fraction t =
  Array.map
    (fun s -> { s with write = Accent_util.Rng.bernoulli rng fraction })
    t
