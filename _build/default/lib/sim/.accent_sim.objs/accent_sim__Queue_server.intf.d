lib/sim/queue_server.mli: Accent_util Engine Time
