type phys = { mutable value : Page.value; mutable refs : int }

type handle = {
  id : int;
  len : int;
  pages : int array; (* physical page ids, mutated on copy-on-write *)
  mutable live : bool;
}

type store = {
  phys : (int, phys) Hashtbl.t;
  mutable next_phys : int;
  mutable handles : int;
  mutable dup_pages : int; (* pages shared by dup so far *)
  mutable copies : int; (* deferred copies actually performed *)
  mutable logical : int; (* live logical pages *)
}

let create_store () =
  {
    phys = Hashtbl.create 1024;
    next_phys = 0;
    handles = 0;
    dup_pages = 0;
    copies = 0;
    logical = 0;
  }

let alloc_phys store value =
  let id = store.next_phys in
  store.next_phys <- id + 1;
  Hashtbl.replace store.phys id { value; refs = 1 };
  id

let find_phys store id =
  match Hashtbl.find_opt store.phys id with
  | Some p -> p
  | None -> invalid_arg "Cow: dangling physical page"

let fresh_handle store len pages =
  store.handles <- store.handles + 1;
  store.logical <- store.logical + Array.length pages;
  { id = store.handles; len; pages; live = true }

let check_live h = if not h.live then invalid_arg "Cow: released handle"

let share store data =
  let len = Bytes.length data in
  let n = (len + Page.size - 1) / Page.size in
  let pages =
    Array.init n (fun i ->
        let page = Page.zero () in
        let off = i * Page.size in
        Bytes.blit data off page 0 (min Page.size (len - off));
        alloc_phys store (Page.of_bytes page))
  in
  fresh_handle store len pages

let share_values store ~len values =
  if (len + Page.size - 1) / Page.size <> Array.length values then
    invalid_arg "Cow.share_values: length does not match page count";
  fresh_handle store len (Array.map (alloc_phys store) values)

let dup store h =
  check_live h;
  Array.iter (fun id -> (find_phys store id).refs <- (find_phys store id).refs + 1)
    h.pages;
  store.dup_pages <- store.dup_pages + Array.length h.pages;
  fresh_handle store h.len (Array.copy h.pages)

let length _store h =
  check_live h;
  h.len

let read store h =
  check_live h;
  let out = Bytes.create h.len in
  let scratch = Bytes.create Page.size in
  Array.iteri
    (fun i id ->
      let p = find_phys store id in
      let off = i * Page.size in
      let n = min Page.size (h.len - off) in
      if n = Page.size then Page.blit_value p.value out off
      else begin
        Page.blit_value p.value scratch 0;
        Bytes.blit scratch 0 out off n
      end)
    h.pages;
  out

let read_page store h i =
  check_live h;
  (find_phys store h.pages.(i)).value

let pages_of _store h =
  check_live h;
  Array.length h.pages

(* Make page [i] of [h] exclusively owned.  Values are immutable, so
   "copying" a shared page is just a new phys slot pointing at the same
   value — the deferred-copy statistic still counts it, since Accent
   would have copied 512 bytes here. *)
let privatize store h i =
  let p = find_phys store h.pages.(i) in
  if p.refs > 1 then begin
    p.refs <- p.refs - 1;
    store.copies <- store.copies + 1;
    h.pages.(i) <- alloc_phys store p.value
  end

let write store h ~offset data =
  check_live h;
  let len = Bytes.length data in
  if offset < 0 || offset + len > h.len then invalid_arg "Cow.write: bounds";
  let first = offset / Page.size in
  let last = (offset + len - 1) / Page.size in
  for i = first to last do
    privatize store h i;
    let p = find_phys store h.pages.(i) in
    let page = Page.to_bytes p.value in
    let page_lo = i * Page.size in
    let src_lo = max 0 (page_lo - offset) in
    let dst_lo = max 0 (offset - page_lo) in
    let n = min (len - src_lo) (Page.size - dst_lo) in
    Bytes.blit data src_lo page dst_lo n;
    p.value <- Page.of_bytes page
  done

let release store h =
  if h.live then begin
    h.live <- false;
    store.logical <- store.logical - Array.length h.pages;
    Array.iter
      (fun id ->
        let p = find_phys store id in
        p.refs <- p.refs - 1;
        if p.refs = 0 then Hashtbl.remove store.phys id)
      h.pages
  end

(* --- process-image export / import -------------------------------------- *)

let export_image store h =
  check_live h;
  (h.len, Array.map (fun id -> (find_phys store id).value) h.pages)

let import_image store (len, values) = share_values store ~len values

let live_pages store = Hashtbl.length store.phys
let logical_pages store = store.logical
let deferred_copies store = store.copies

let sharing_ratio store =
  if store.dup_pages = 0 then 1.0
  else 1.0 -. (float_of_int store.copies /. float_of_int store.dup_pages)
