lib/mem/interval_map.ml: Int List Map
