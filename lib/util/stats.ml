(* Bounded-memory streaming statistics.

   The accumulator keeps running moments (Welford) in an unboxed float
   array, so [add] performs no allocation on the steady state — the old
   representation retained every sample in a boxed float list, which made
   live heap grow O(observations) and [add] cost two minor-heap
   allocations; queue servers feed two of these per job on every host,
   so a million-event cluster run retained tens of megabytes of floats
   it would only ever reduce to five scalars.

   Quantiles come from a two-mode sample store:

   - {e exact mode}: up to [exact_capacity] samples are retained in a
     flat (unboxed) float array and percentiles interpolate over the
     sorted copy, byte-identical to the historical all-samples
     behaviour.  Every printed table in the repo draws from series far
     below the default capacity, so their output is unchanged.
   - {e sketch mode}: past the capacity the samples collapse into a
     DDSketch-style logarithmic histogram (relative accuracy
     [sketch_alpha] per magnitude), and memory stays bounded by the
     dynamic range of the data, independent of the observation count. *)

let sketch_alpha = 0.01
let default_exact_capacity = 4096

(* gamma = (1 + a) / (1 - a): bucket i covers (gamma^(i-1), gamma^i],
   so the midpoint estimate 2*gamma^i/(gamma+1) is within [sketch_alpha]
   relative error of anything in the bucket *)
let gamma = (1. +. sketch_alpha) /. (1. -. sketch_alpha)
let log_gamma = log gamma

(* one signed side of the sketch: log-binned counts over magnitudes,
   kept in a growable window [base, base + Array.length bins) *)
type side = {
  mutable bins : int array;
  mutable base : int;
  mutable n : int;  (* total count on this side *)
}

type sketch = {
  pos : side;
  neg : side;  (* binned on |x|, walked in reverse for order stats *)
  mutable zeros : int;
}

type t = {
  mutable count : int;
  moments : float array;  (* total, mean, m2, min, max — unboxed *)
  exact_capacity : int;
  mutable exact : float array;  (* unboxed; only [exact_len] are live *)
  mutable exact_len : int;
  mutable sketch : sketch option;  (* Some once capacity was exceeded *)
}

let i_total = 0
let i_mean = 1
let i_m2 = 2
let i_min = 3
let i_max = 4

let create ?(exact_capacity = default_exact_capacity) () =
  if exact_capacity < 0 then
    invalid_arg "Stats.create: exact_capacity must be >= 0";
  let moments = Array.make 5 0. in
  moments.(i_min) <- infinity;
  moments.(i_max) <- neg_infinity;
  {
    count = 0;
    moments;
    exact_capacity;
    exact = [||];
    exact_len = 0;
    sketch = None;
  }

let clear t =
  t.count <- 0;
  t.moments.(i_total) <- 0.;
  t.moments.(i_mean) <- 0.;
  t.moments.(i_m2) <- 0.;
  t.moments.(i_min) <- infinity;
  t.moments.(i_max) <- neg_infinity;
  t.exact <- [||];
  t.exact_len <- 0;
  t.sketch <- None

(* --- the sketch --------------------------------------------------------- *)

let bin_of_magnitude v = int_of_float (Float.ceil (log v /. log_gamma))
let magnitude_of_bin i = 2. *. exp (float_of_int i *. log_gamma) /. (gamma +. 1.)

let side_add_n side idx n =
  let cap = Array.length side.bins in
  if cap = 0 then begin
    side.bins <- Array.make 16 0;
    side.base <- idx - 8
  end
  else if idx < side.base || idx >= side.base + cap then begin
    (* re-window: grow to cover both the old window and the new index *)
    let lo = min idx side.base and hi = max (idx + 1) (side.base + cap) in
    let need = hi - lo in
    let size = ref (max 16 cap) in
    while !size < need do
      size := !size * 2
    done;
    (* centre the old window inside the new array so growth in either
       direction stays amortized *)
    let slack = !size - need in
    let base = lo - (slack / 2) in
    let bins = Array.make !size 0 in
    Array.blit side.bins 0 bins (side.base - base) cap;
    side.bins <- bins;
    side.base <- base
  end;
  side.bins.(idx - side.base) <- side.bins.(idx - side.base) + n;
  side.n <- side.n + n

let side_add side idx = side_add_n side idx 1

let sketch_add sk x =
  if x > 0. then side_add sk.pos (bin_of_magnitude x)
  else if x < 0. then side_add sk.neg (bin_of_magnitude (-.x))
  else sk.zeros <- sk.zeros + 1

let fresh_sketch () =
  {
    pos = { bins = [||]; base = 0; n = 0 };
    neg = { bins = [||]; base = 0; n = 0 };
    zeros = 0;
  }

(* move into sketch mode: fold the retained exact samples in and drop
   the array (from here on memory is bounded by the data's dynamic
   range, not the observation count) *)
let spill_to_sketch t =
  let sk = fresh_sketch () in
  for i = 0 to t.exact_len - 1 do
    sketch_add sk t.exact.(i)
  done;
  t.exact <- [||];
  t.exact_len <- 0;
  t.sketch <- Some sk

let store_sample t x =
  match t.sketch with
  | Some sk -> sketch_add sk x
  | None ->
      if t.exact_len >= t.exact_capacity then begin
        spill_to_sketch t;
        match t.sketch with
        | Some sk -> sketch_add sk x
        | None -> assert false
      end
      else begin
        let cap = Array.length t.exact in
        if t.exact_len = cap then begin
          let grown =
            Array.make (min t.exact_capacity (max 16 (cap * 2))) 0.
          in
          Array.blit t.exact 0 grown 0 t.exact_len;
          t.exact <- grown
        end;
        t.exact.(t.exact_len) <- x;
        t.exact_len <- t.exact_len + 1
      end

(* --- the accumulator ---------------------------------------------------- *)

let add t x =
  t.count <- t.count + 1;
  let m = t.moments in
  m.(i_total) <- m.(i_total) +. x;
  let delta = x -. m.(i_mean) in
  m.(i_mean) <- m.(i_mean) +. (delta /. float_of_int t.count);
  m.(i_m2) <- m.(i_m2) +. (delta *. (x -. m.(i_mean)));
  if x < m.(i_min) then m.(i_min) <- x;
  if x > m.(i_max) then m.(i_max) <- x;
  store_sample t x

let count t = t.count
let total t = t.moments.(i_total)
let mean t = if t.count = 0 then 0. else t.moments.(i_mean)

let variance t =
  if t.count < 2 then 0. else t.moments.(i_m2) /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)
let min_value t = t.moments.(i_min)
let max_value t = t.moments.(i_max)
let retained_exactly t = t.sketch = None

(* interpolated percentile over a sorted array prefix — the historical
   definition, unchanged *)
let percentile_sorted arr n p =
  let p = Float.max 0. (Float.min 100. p) in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then arr.(lo)
  else
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

(* the k-th (0-based) order statistic as the sketch sees it: negatives
   by descending magnitude, then zeros, then positives by ascending
   magnitude; each bucket answers with its midpoint estimate, clamped
   into the exactly-tracked [min, max] *)
let sketch_order_stat t sk k =
  let clamp v =
    Float.max t.moments.(i_min) (Float.min t.moments.(i_max) v)
  in
  let remaining = ref k and result = ref nan in
  let take count value =
    if Float.is_nan !result then
      if !remaining < count then result := value
      else remaining := !remaining - count
  in
  let neg_cap = Array.length sk.neg.bins in
  (if sk.neg.n > 0 then
     for i = neg_cap - 1 downto 0 do
       let c = sk.neg.bins.(i) in
       if c > 0 then
         take c (clamp (-.magnitude_of_bin (sk.neg.base + i)))
     done);
  take sk.zeros 0.;
  let pos_cap = Array.length sk.pos.bins in
  (if sk.pos.n > 0 then
     for i = 0 to pos_cap - 1 do
       let c = sk.pos.bins.(i) in
       if c > 0 then take c (clamp (magnitude_of_bin (sk.pos.base + i)))
     done);
  !result

let percentile t p =
  if t.count = 0 then 0.
  else
    match t.sketch with
    | None ->
        let arr = Array.sub t.exact 0 t.exact_len in
        Array.sort Float.compare arr;
        percentile_sorted arr t.exact_len p
    | Some sk ->
        let p = Float.max 0. (Float.min 100. p) in
        let rank = p /. 100. *. float_of_int (t.count - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = int_of_float (Float.ceil rank) in
        let v_lo = sketch_order_stat t sk lo in
        if lo = hi then v_lo
        else
          let v_hi = sketch_order_stat t sk hi in
          let frac = rank -. float_of_int lo in
          (v_lo *. (1. -. frac)) +. (v_hi *. frac)

(* --- merge -------------------------------------------------------------- *)

let merge_side dst src =
  let cap = Array.length src.bins in
  for i = 0 to cap - 1 do
    let c = src.bins.(i) in
    if c > 0 then side_add_n dst (src.base + i) c
  done

let merge a b =
  match (a.sketch, b.sketch) with
  | None, None ->
      (* both fully retained: re-feed the samples in insertion order, as
         the historical merge did *)
      let t = create ~exact_capacity:(max a.exact_capacity b.exact_capacity) () in
      for i = 0 to a.exact_len - 1 do
        add t a.exact.(i)
      done;
      for i = 0 to b.exact_len - 1 do
        add t b.exact.(i)
      done;
      t
  | _ ->
      let t = create ~exact_capacity:(max a.exact_capacity b.exact_capacity) () in
      (* moments: Chan's pairwise combination *)
      let na = float_of_int a.count and nb = float_of_int b.count in
      let n = na +. nb in
      let ma = a.moments and mb = b.moments in
      let m = t.moments in
      t.count <- a.count + b.count;
      m.(i_total) <- ma.(i_total) +. mb.(i_total);
      let delta = mb.(i_mean) -. ma.(i_mean) in
      m.(i_mean) <- ma.(i_mean) +. (delta *. nb /. n);
      m.(i_m2) <- ma.(i_m2) +. mb.(i_m2) +. (delta *. delta *. na *. nb /. n);
      m.(i_min) <- Float.min ma.(i_min) mb.(i_min);
      m.(i_max) <- Float.max ma.(i_max) mb.(i_max);
      (* samples: everything collapses into one sketch *)
      let sk = fresh_sketch () in
      let feed side =
        match side.sketch with
        | Some s ->
            merge_side sk.pos s.pos;
            merge_side sk.neg s.neg;
            sk.zeros <- sk.zeros + s.zeros
        | None ->
            for i = 0 to side.exact_len - 1 do
              sketch_add sk side.exact.(i)
            done
      in
      feed a;
      feed b;
      t.sketch <- Some sk;
      t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count
    (mean t) (stddev t) t.moments.(i_min) t.moments.(i_max)

(* --- batch helpers ------------------------------------------------------ *)

let mean_of = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Batch percentile over a list; always exact regardless of length, and
   empty series report 0 rather than raising or propagating a NaN into a
   report row (a cluster run where a policy triggers zero migrations is
   a legitimate, empty series). *)
let percentile_of xs p =
  match xs with
  | [] -> 0.
  | xs ->
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      percentile_sorted arr (Array.length arr) p

let min_of = function [] -> 0. | xs -> List.fold_left Float.min infinity xs
let max_of = function [] -> 0. | xs -> List.fold_left Float.max neg_infinity xs

let geometric_mean = function
  | [] -> 0.
  | xs ->
      let logs = List.map log xs in
      exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length xs))
