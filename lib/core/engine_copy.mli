(** The pure-copy transfer engine, and the classic two-message context
    protocol it owns.

    "Classic" migrations (pure-copy and every lazy variant built on it)
    ship the context as two concurrent messages: the Core — microstate,
    PCB, port rights, AMap — and the RIMAS.  This module defines those
    payloads, the sender both classic engines use, and the
    destination-side race resolution (the messages arrive in either
    order: under pure-IOU the tiny RIMAS regularly beats the Core).

    {!Engine_iou} reuses {!send_context} with its own RIMAS preparation;
    destination handling for {e all} classic strategies lives here, since
    the wire format does not reveal which strategy sent it. *)

type Accent_ipc.Message.payload +=
  | Mig_core of {
      core : Accent_kernel.Context.core;
      prefetch : int;
      report : Report.t;
      on_complete : (Accent_kernel.Proc.t -> Report.t -> unit) option;
      on_restart : (Accent_kernel.Proc.t -> unit) option;
    }
  | Mig_rimas of { proc_id : int; report : Report.t }
        (** memory object: the RIMAS, collapsed coordinates *)

val send_context :
  Transfer_engine.ctx ->
  dest:Accent_ipc.Port.id ->
  excised:Accent_kernel.Excise.excised ->
  rimas:Accent_ipc.Memory_object.t ->
  no_ious:bool ->
  prefetch:int ->
  report:Report.t ->
  on_complete:(Accent_kernel.Proc.t -> Report.t -> unit) option ->
  on_restart:(Accent_kernel.Proc.t -> unit) option ->
  unit
(** Send the RIMAS then the Core to [dest].  RIMAS first: under the lazy
    strategies it is one small fragment and the relocated process cannot
    restart until it lands, so it should not queue behind the Core's AMap
    fragments. *)

val create : Transfer_engine.ctx -> Transfer_engine.t
(** Claims [Pure_copy]; its [handle] consumes the Core/RIMAS payloads of
    every classic strategy. *)
