(** IPC messages.

    A message carries a small inline body, optional out-of-line memory
    (see {!Memory_object}), and port rights.  The [payload] is an extensible
    variant: each layer of the system (pager, migration, applications)
    declares its own message kinds without this module knowing about them,
    mirroring how Accent messages were typed by user-level convention. *)

type payload = ..
(** Extended by higher layers, e.g. the imaginary-memory protocol adds
    [Imaginary_read_request]. *)

type payload += Ping of int  (** built-in kind for tests and examples *)

type category =
  | Control  (** commands, context metadata, death notices *)
  | Bulk  (** address-space content shipped at migration time *)
  | Fault  (** imaginary read requests and replies *)
  | Retransmit
      (** fragments re-sent by the reliable transport after a timeout —
          wire overhead, not goodput *)
  | Ack  (** transport acknowledgements (cumulative + selective) *)
      (** Traffic class, for the byte- and rate-accounting that the paper's
          Figures 4-3 and 4-5 split into fault vs other transfers.  The
          [Retransmit] and [Ack] classes exist only on the wire: no message
          payload travels under them, but recording them separately lets
          the loss-sweep experiment split goodput from ARQ overhead. *)

val category_name : category -> string

type t = {
  id : int;
  dest : Port.id;
  reply_to : Port.id option;
  payload : payload;
  inline_bytes : int;  (** size of the inline body *)
  memory : Memory_object.t option;  (** out-of-line memory, if any *)
  rights : Port.id list;  (** port rights transferred by the message *)
  no_ious : bool;
      (** the NoIOUs header bit (§2.4): when set, NetMsgServers must
          physically copy the memory object rather than caching it and
          passing IOUs *)
  category : category;
}

val make :
  ids:Accent_sim.Ids.t ->
  dest:Port.id ->
  ?reply_to:Port.id ->
  ?inline_bytes:int ->
  ?memory:Memory_object.t ->
  ?rights:Port.id list ->
  ?no_ious:bool ->
  ?category:category ->
  payload ->
  t
(** [inline_bytes] defaults to 64 (a small typed request); [no_ious]
    defaults to false; [category] to [Control].  The memory object, when
    present, is validated. *)

val header_bytes : int
(** Fixed per-message wire overhead. *)

val right_bytes : int
(** Wire overhead per transferred port right. *)

val local_size : t -> int
(** Bytes the message logically occupies on one host: header + inline +
    out-of-line memory (data and promised alike do not differ locally —
    both are mappings). *)

val wire_size : t -> int
(** Bytes this message puts on the network as currently composed: header +
    inline + rights + memory descriptors + {e physically present} data.
    IOU chunks contribute descriptors only. *)

val with_memory : t -> Memory_object.t option -> t
(** Replace the memory object (NetMsgServer IOU substitution). *)

val pp : Format.formatter -> t -> unit
