examples/residual_dependency.mli:
