(* A fixed pool of OCaml 5 domains fanning an indexed job list.

   The contract callers must honour (and the reason this is safe at all)
   is *worlds share nothing*: each job builds every mutable structure it
   touches — engine, hosts, RNG streams, event bus — from its own
   (seed, config) inputs and communicates only through its return value.
   The one library-level exception, the page-digest memo, is
   domain-local (see Page.pattern_digests), so jobs on different domains
   cannot observe each other at all.

   Determinism: results are stored into a slot chosen by job *index*,
   never by completion order, so [map ~domains:n f] returns exactly
   [Array.init jobs f] for any [n].  Work is handed out from an atomic
   counter, which makes the schedule nondeterministic — but since jobs
   are pure (given the contract above) the merged output is not. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let run_jobs ~workers ~jobs f slots =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < jobs then begin
        (slots.(i) <-
           (try Value (f i)
            with e -> Raised (e, Printexc.get_raw_backtrace ())));
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned

let map ?(domains = 1) ~jobs f =
  if jobs < 0 then invalid_arg "Domain_pool.map: negative job count";
  if jobs = 0 then [||]
  else begin
    let workers = max 1 (min domains jobs) in
    if workers = 1 then Array.init jobs f
    else begin
      let slots =
        Array.make jobs
          (Raised (Failure "Domain_pool: job never ran", Printexc.get_callstack 0))
      in
      run_jobs ~workers ~jobs f slots;
      Array.map
        (function
          | Value v -> v
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)
        slots
    end
  end

let map_list ?domains f xs =
  let arr = Array.of_list xs in
  Array.to_list (map ?domains ~jobs:(Array.length arr) (fun i -> f arr.(i)))

let recommended () = Domain.recommended_domain_count ()
