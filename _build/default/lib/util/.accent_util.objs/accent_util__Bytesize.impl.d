lib/util/bytesize.ml: Buffer Format String
