lib/experiments/figure_4_4.mli: Sweep Trial
