lib/experiments/table_4_1.mli: Accent_kernel Accent_workloads
