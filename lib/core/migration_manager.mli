(** The MigrationManager (paper §3.2).

    One runs on every participating host.  The manager itself is a thin
    coordinator: it binds the command port, dispatches inbound messages to
    the {!Transfer_engine.t} that claims them, and owns the
    insert/restart lifecycle at the destination.  The transfer mechanics
    live in the engines:

    - {!Engine_copy} — pure-copy, and the shared two-message context
      protocol (Core + RIMAS);
    - {!Engine_iou} — pure-IOU, resident-set, working-set RIMAS
      preparation;
    - {!Engine_precopy} — Theimer-style pre-copy rounds;
    - {!Engine_hybrid} — working-set push rounds with an IOU cold tail.

    Every phase of every migration is published as a {!Mig_event.t} on the
    manager's bus; the per-migration {!Report.t} is maintained as a fold
    over that stream ({!Mig_event.apply}), so subscribers observe exactly
    the information the report is built from. *)

type t

val create : ?bus:Mig_event.bus -> Accent_kernel.Host.t -> t
(** Bind the manager's command port on the host.  [bus] lets several
    managers share one event stream (as {!World} does); a private bus is
    created when omitted. *)

val port : t -> Accent_ipc.Port.id
val host : t -> Accent_kernel.Host.t

val backing : t -> Backing_server.t
(** The manager's own backing server (used by the resident-set and
    working-set strategies). *)

val bus : t -> Mig_event.bus
(** The event bus this manager publishes on. *)

val migrate :
  t ->
  proc:Accent_kernel.Proc.t ->
  dest:Accent_ipc.Port.id ->
  strategy:Strategy.t ->
  ?on_complete:(Accent_kernel.Proc.t -> Report.t -> unit) ->
  ?on_restart:(Accent_kernel.Proc.t -> unit) ->
  unit ->
  Report.t
(** Start a migration of [proc] to the manager listening on [dest].  The
    returned report is stamped as phases complete; [on_restart] fires at
    the destination just before the reincarnated process resumes (e.g. to
    attach an {!Adaptive_prefetch} controller); [on_complete] fires when
    the relocated process finishes its remote execution. *)

val migrations_started : t -> int
val migrations_received : t -> int

val engine_stats : t -> (string * (string * int) list) list
(** Each engine's name with its live bookkeeping counters
    ({!Transfer_engine.t.debug_stats}) — e.g. pre-copy's in-flight round
    state and staged-page stores.  For tests and leak diagnostics. *)
