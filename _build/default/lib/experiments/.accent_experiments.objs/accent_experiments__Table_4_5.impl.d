lib/experiments/table_4_5.ml: Accent_core Accent_util Accent_workloads Float List Option Paper Printf Report Sweep Text_table Trial
