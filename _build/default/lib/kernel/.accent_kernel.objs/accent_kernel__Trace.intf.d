lib/kernel/trace.mli: Accent_mem Accent_util
