examples/quickstart.mli:
