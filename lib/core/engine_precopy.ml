open Accent_ipc
open Accent_kernel
open Transfer_engine

type Message.payload +=
  | Mig_precopy_pages of {
      proc_id : int;
      round : int;
      src_port : Port.id;  (** where the acknowledgement goes *)
    }  (** memory object: Data chunks in virtual-address coordinates *)
  | Mig_precopy_ack of { proc_id : int; round : int }
  | Mig_precopy_final of {
      core : Context.core;
      report : Report.t;
      on_complete : (Proc.t -> Report.t -> unit) option;
    }  (** memory object: the residual dirty pages, vaddr coordinates *)

(* --- source side -------------------------------------------------------- *)

let round_payload ctx ~proc_id ~round =
  Mig_precopy_pages { proc_id; round; src_port = ctx.port }

(* residual = everything dirtied since the last round, plus any page
   materialised after round 1 that no round ever shipped — read out of the
   captured image, which everything the final message carries derives
   from, as a run subtraction against the sent view rather than an
   O(pages) enumerate-and-filter *)
let residual_and_extra image ~sent ~written =
  (Image_wire.precopy_residual_chunks image ~sent ~written, [])

let freeze ctx outbound pool (state : Image_wire.push) =
  Image_wire.freeze_and_ship ctx outbound pool state ~residual_and_extra
    ~final_payload:(fun ~core ->
      Mig_precopy_final
        {
          core;
          report = state.Image_wire.out_report;
          on_complete = state.Image_wire.out_on_complete;
        })

(* --- the engine --------------------------------------------------------- *)

let start ctx outbound pool ~proc ~dest ~strategy ~report ~on_complete
    ~on_restart:_ =
  match strategy.Strategy.transfer with
  | Strategy.Pre_copy { max_rounds; threshold_pages } ->
      (* the process keeps executing at the source while rounds proceed *)
      let state =
        {
          Image_wire.proc;
          dest;
          max_rounds;
          threshold_pages;
          out_report = report;
          out_on_complete = on_complete;
          sent = Image_wire.Sent_pool.take pool;
        }
      in
      Hashtbl.replace outbound proc.Proc.id state;
      Image_wire.send_push_all ctx state ~round:1
        ~payload:(round_payload ctx ~proc_id:proc.Proc.id)
  | _ -> assert false (* the manager dispatches on [claims] *)

let create ctx =
  (* source side of in-progress pre-copy migrations, by proc id *)
  let outbound : (int, Image_wire.push) Hashtbl.t = Hashtbl.create 4 in
  (* destination side: pages staged by pre-copy rounds, keyed by proc id;
     the inner store indexes pages by virtual address *)
  let staged : (int, Segment_store.t) Hashtbl.t = Hashtbl.create 4 in
  let pool = Image_wire.Sent_pool.create () in
  (* An abandoned migration never sees Mig_precopy_final, which is the only
     normal exit for both tables: drop its state when the transport gives
     up on it (or the engine itself aborts it), or the staged pages of
     every failed migration stay resident forever. *)
  Mig_event.subscribe_cleanup ctx.bus (fun ev ->
      match ev.Mig_event.kind with
      | Mig_event.Transport_give_up | Mig_event.Engine_abort _ ->
          (match Hashtbl.find_opt outbound ev.Mig_event.proc_id with
          | Some state -> Image_wire.Sent_pool.give pool state.Image_wire.sent
          | None -> ());
          Hashtbl.remove outbound ev.Mig_event.proc_id;
          Hashtbl.remove staged ev.Mig_event.proc_id
      | _ -> ());
  let handle msg =
    match msg.Message.payload with
    | Mig_precopy_pages { proc_id; round; src_port } ->
        Image_wire.handle_staged_pages ctx staged ~proc_id ~round ~src_port
          ~memory:(Option.value msg.Message.memory ~default:[])
          ~ack_payload:(fun ~proc_id ~round ->
            Mig_precopy_ack { proc_id; round });
        true
    | Mig_precopy_ack { proc_id; round } ->
        Image_wire.handle_push_ack ctx outbound ~proc_id ~round
          ~stray:"pre-copy"
          ~freeze:(freeze ctx outbound pool)
          ~payload:(round_payload ctx ~proc_id);
        true
    | Mig_precopy_final { core; report; on_complete } ->
        Image_wire.handle_final ctx staged ~core ~report ~on_complete
          ~memory:(Option.value msg.Message.memory ~default:[])
          ~assemble:Image_wire.assemble_strict;
        true
    | _ -> false
  in
  let give_up_proc = function
    | Mig_precopy_pages { proc_id; _ } -> Some proc_id
    | Mig_precopy_final { core; _ } -> Some core.Context.proc_id
    (* a lost ack only delays the next round decision; the migration can
       still proceed when the transport gives up on it *)
    | _ -> None
  in
  {
    name = "precopy";
    claims = (function Strategy.Pre_copy _ -> true | _ -> false);
    start = start ctx outbound pool;
    handle;
    give_up_proc;
    debug_stats =
      (fun () ->
        [
          ("outbound", Hashtbl.length outbound);
          ("staged", Hashtbl.length staged);
        ]);
  }
