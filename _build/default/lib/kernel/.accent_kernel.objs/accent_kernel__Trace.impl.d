lib/kernel/trace.ml: Accent_mem Accent_util Array Fun Hashtbl List
