open Accent_ipc

type slot = {
  mutable bytes : int;
  mutable messages : int;
  mutable series : Accent_util.Series.t;
}

type t = {
  control : slot;
  bulk : slot;
  fault : slot;
  retransmit : slot;
  ack : slot;
  (* The per-category time series costs a retained cons per transmitted
     message — fine for a single-migration figure, O(messages) retention
     for a datacenter churn run, which turns it off. *)
  mutable record_series : bool;
}

let fresh_slot () =
  { bytes = 0; messages = 0; series = Accent_util.Series.create () }

let create () =
  {
    control = fresh_slot ();
    bulk = fresh_slot ();
    fault = fresh_slot ();
    retransmit = fresh_slot ();
    ack = fresh_slot ();
    record_series = true;
  }

let slot t (category : Message.category) =
  match category with
  | Control -> t.control
  | Bulk -> t.bulk
  | Fault -> t.fault
  | Retransmit -> t.retransmit
  | Ack -> t.ack

let all_slots t = [ t.control; t.bulk; t.fault; t.retransmit; t.ack ]

let record t ~time ~category ~bytes =
  let s = slot t category in
  s.bytes <- s.bytes + bytes;
  if t.record_series then
    Accent_util.Series.add s.series ~time ~value:(float_of_int bytes)

let set_record_series t on = t.record_series <- on

let note_message t ~category =
  let s = slot t category in
  s.messages <- s.messages + 1

let bytes_of t category = (slot t category).bytes
let bytes_total t = List.fold_left (fun acc s -> acc + s.bytes) 0 (all_slots t)

let goodput_bytes t = t.control.bytes + t.bulk.bytes + t.fault.bytes
let overhead_bytes t = t.retransmit.bytes + t.ack.bytes

let messages_of t category = (slot t category).messages

let messages_total t =
  List.fold_left (fun acc s -> acc + s.messages) 0 (all_slots t)

let series_of t category = (slot t category).series

let reset t =
  List.iter
    (fun s ->
      s.bytes <- 0;
      s.messages <- 0;
      s.series <- Accent_util.Series.create ())
    (all_slots t)
