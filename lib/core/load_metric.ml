open Accent_kernel

let host_load host =
  float_of_int (Host.live_proc_count host)
  +. 0.2
     *. float_of_int (Accent_sim.Queue_server.queue_length (Host.cpu host))

let dispersion ~registry host proc =
  let space = Proc.space_exn proc in
  let tally = Hashtbl.create 4 in
  let add host_id bytes =
    let prev = Option.value ~default:0 (Hashtbl.find_opt tally host_id) in
    Hashtbl.replace tally host_id (prev + bytes)
  in
  add (Host.id host) (Accent_mem.Address_space.real_bytes space);
  List.iter
    (fun (segment_id, bytes) ->
      match Pager.backing_port (Host.pager host) ~segment_id with
      | None -> ()
      | Some port -> (
          match Accent_net.Net_registry.port_home registry port with
          | Some home -> add home bytes
          | None -> ()))
    (Accent_mem.Address_space.imag_segments space);
  Hashtbl.fold (fun host_id bytes acc -> (host_id, bytes) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* §6's load metrics are instantaneous, and the threshold policy acts on
   a single sample — so a one-tick queue blip can trigger a migration
   whose cost dwarfs the imbalance it "fixed".  The classic remedy
   (Barak & Shiloh's MOSIX load vectors, and every load-average since)
   is exponential smoothing of the per-host signal.  Opt-in: policies
   consume whatever load vector the sampler hands them. *)
module Ewma = struct
  type t = { alpha : float; mutable smoothed : float array option }

  let create ?(alpha = 0.3) () =
    if not (alpha > 0. && alpha <= 1.) then
      invalid_arg "Load_metric.Ewma.create: alpha must be in (0, 1]";
    { alpha; smoothed = None }

  let alpha t = t.alpha

  (* Fold [buf] through the smoother and overwrite it with the smoothed
     vector, allocating nothing after the state is seeded.  This is the
     sampler's per-tick path: the caller owns [buf] and reuses it. *)
  let observe_into t buf =
    match t.smoothed with
    | Some prev when Array.length prev = Array.length buf ->
        for i = 0 to Array.length buf - 1 do
          let s = (t.alpha *. buf.(i)) +. ((1. -. t.alpha) *. prev.(i)) in
          prev.(i) <- s;
          buf.(i) <- s
        done
    | None | Some _ ->
        (* seed (or re-seed after a topology change) with the raw sample *)
        t.smoothed <- Some (Array.copy buf)

  let observe t raw =
    let buf = Array.copy raw in
    observe_into t buf;
    buf
end

let affinity ~registry host proc ~host_id =
  let shares = dispersion ~registry host proc in
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 shares in
  if total = 0 then 0.
  else
    float_of_int (Option.value ~default:0 (List.assoc_opt host_id shares))
    /. float_of_int total
