open Accent_core

type rep_results = {
  spec : Accent_workloads.Spec.t;
  copy : Trial.result;
  iou : (int * Trial.result) list;
  rs : (int * Trial.result) list;
}

type t = rep_results list

let run ?seed ?costs ?on_event ?(specs = Accent_workloads.Representative.all)
    ?(prefetches = Strategy.paper_prefetch_values) ?(progress = true)
    ?(domains = 1) () =
  let note fmt = Printf.ksprintf (fun s -> if progress then prerr_endline s) fmt in
  (* every (spec, strategy) cell is an independent world, so the flat grid
     fans across domains; [domains = 1] runs the exact sequential order *)
  let strategies =
    (Strategy.pure_copy
    :: List.map (fun p -> Strategy.pure_iou ~prefetch:p ()) prefetches)
    @ List.map (fun p -> Strategy.resident_set ~prefetch:p ()) prefetches
  in
  let grid =
    List.concat_map
      (fun spec -> List.map (fun s -> (spec, s)) strategies)
      specs
  in
  let trials =
    Accent_util.Domain_pool.map_list ~domains
      (fun (spec, strategy) ->
        note "  trial: %-9s %s" spec.Accent_workloads.Spec.name
          (Strategy.name strategy);
        Trial.run ?seed ?costs ?on_event ~spec ~strategy ())
      grid
  in
  let per_spec = List.length strategies in
  let arr = Array.of_list trials in
  List.mapi
    (fun i spec ->
      let at j = arr.((i * per_spec) + j) in
      let n = List.length prefetches in
      {
        spec;
        copy = at 0;
        iou = List.mapi (fun k p -> (p, at (1 + k))) prefetches;
        rs = List.mapi (fun k p -> (p, at (1 + n + k))) prefetches;
      })
    specs

let find t name =
  List.find (fun r -> r.spec.Accent_workloads.Spec.name = name) t

let iou_at rep p = List.assoc p rep.iou
let rs_at rep p = List.assoc p rep.rs
