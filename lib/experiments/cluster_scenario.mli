(** Evaluating automatic migration strategies — §6's "creation and
    evaluation of automatic migration strategies ... good load metrics"
    turned into a measurable scenario.

    A batch of compute-bound jobs arrives on one host of an N-host
    cluster.  Co-located jobs contend for the execution CPU, so the
    cluster's throughput depends on whether (and how well) an automatic
    policy spreads them.  Three configurations are compared:

    - no balancing at all;
    - the {!Accent_core.Auto_migrator} with affinity disabled (pure
      load-levelling);
    - the full policy, whose destination choice also discounts hosts that
      already back a candidate's imaginary memory.

    All relocations use copy-on-reference with one page of prefetch — the
    paper's recommended configuration. *)

type config = {
  n_hosts : int;
  n_jobs : int;
  arrival_spread_ms : float;  (** jobs arrive uniformly over this window *)
  job_think_ms : float;  (** per-job compute *)
  seed : int64;
}

val default_config : config

type outcome = {
  label : string;
  makespan_s : float;  (** last completion *)
  mean_turnaround_s : float;  (** mean per-job start-to-finish *)
  migrations : int;
  placements : int list;  (** final process count per host *)
}

val run :
  ?config:config -> policy:Accent_core.Auto_migrator.policy option ->
  label:string -> unit -> outcome

val compare_policies : ?config:config -> unit -> outcome list
(** The three configurations above. *)

val render : outcome list -> string

(** {2 The open-workload (churn) scenario}

    The datacenter-scale steady state: jobs arrive cluster-wide as a
    Poisson process, land on a uniformly random host, run a short
    reference trace and depart, while a {!Accent_core.Placement_policy}
    daemon migrates continuously.  Every run is a deterministic function
    of [(churn_seed, config)] — results carry no wall-clock fields, so
    the sequential and domain-parallel sweep runners can be asserted
    byte-identical. *)

type churn_config = {
  hosts : int;
  jobs : int;  (** total arrivals over the run *)
  arrival_rate_per_s : float;  (** cluster-wide Poisson arrival rate *)
  job_pages : int;  (** real pages per job *)
  job_refs : int;  (** post-arrival references per job *)
  job_think_ms : float;  (** mean compute per job (exponential) *)
  period_ms : float;  (** policy sampling period *)
  max_migrations : int;
  strategy : Accent_core.Strategy.t;
  churn_seed : int64;
}

val default_churn : churn_config

type churn_result = {
  policy_name : string;
  hosts_n : int;
  jobs_submitted : int;
  jobs_completed : int;
  sim_s : float;
  events : int;  (** simulation events executed *)
  migrations : int;
  migration_rate_per_s : float;  (** per simulated second *)
  downtime_ms_p50 : float;
      (** Frozen (or Requested) → Restarted gap, via the event bus *)
  downtime_ms_p99 : float;
  downtime_samples : int;
  wire_bytes : int;
  mean_turnaround_s : float;
  max_host_jobs : int;
      (** most completions any one host served — a placement-skew probe *)
}

val run_churn :
  ?config:churn_config ->
  policy:Accent_core.Placement_policy.t ->
  unit ->
  churn_result

type gc_probe = {
  minor_words : float;  (** minor-heap words allocated over the run *)
  minor_words_per_event : float;
  live_words_after : int;
      (** live major-heap words after releasing departed jobs and a full
          major collection — must depend on cluster size, not job count *)
}

val run_churn_gc :
  ?config:churn_config ->
  policy:Accent_core.Placement_policy.t ->
  unit ->
  churn_result * gc_probe
(** {!run_churn} with the allocation meters on.  Kept separate because
    GC counters are per-domain (OCaml 5): folding them into
    [churn_result] would break the sweep's sequential-vs-parallel
    byte-identity.  Single-domain use only. *)

val default_churn_policies : unit -> Accent_core.Placement_policy.t list
(** static, random, threshold, destination-swap. *)

val compare_churn :
  ?config:churn_config ->
  ?domains:int ->
  ?policies:Accent_core.Placement_policy.t list ->
  unit ->
  churn_result list
(** One world per policy, optionally fanned across OCaml domains; the
    result order always follows the policy list. *)

val churn_seed_sweep :
  ?config:churn_config ->
  ?domains:int ->
  policy:Accent_core.Placement_policy.t ->
  seeds:int64 list ->
  unit ->
  churn_result list
(** One independent world per seed, fanned over [domains] OCaml domains
    ({!Accent_util.Domain_pool}) and merged in seed order; the result
    list is identical for any domain count. *)

val churn_json : churn_result -> string
(** One flat JSON object (a BENCH_cluster.json row). *)

val render_churn : ?title:string -> churn_result list -> string
