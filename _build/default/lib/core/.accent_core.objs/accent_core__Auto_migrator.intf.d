lib/core/auto_migrator.mli: Strategy World
