lib/core/load_metric.ml: Accent_kernel Accent_mem Accent_net Accent_sim Hashtbl Host List Option Pager Proc
