open Accent_kernel

let host_load host =
  float_of_int (Host.live_proc_count host)
  +. 0.2
     *. float_of_int (Accent_sim.Queue_server.queue_length (Host.cpu host))

let dispersion ~registry host proc =
  let space = Proc.space_exn proc in
  let tally = Hashtbl.create 4 in
  let add host_id bytes =
    let prev = Option.value ~default:0 (Hashtbl.find_opt tally host_id) in
    Hashtbl.replace tally host_id (prev + bytes)
  in
  add (Host.id host) (Accent_mem.Address_space.real_bytes space);
  List.iter
    (fun (segment_id, bytes) ->
      match Pager.backing_port (Host.pager host) ~segment_id with
      | None -> ()
      | Some port -> (
          match Accent_net.Net_registry.port_home registry port with
          | Some home -> add home bytes
          | None -> ()))
    (Accent_mem.Address_space.imag_segments space);
  Hashtbl.fold (fun host_id bytes acc -> (host_id, bytes) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let affinity ~registry host proc ~host_id =
  let shares = dispersion ~registry host proc in
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 shares in
  if total = 0 then 0.
  else
    float_of_int (Option.value ~default:0 (List.assoc_opt host_id shares))
    /. float_of_int total
