lib/experiments/figure_4_2.mli: Sweep Trial
