lib/util/rng.mli:
