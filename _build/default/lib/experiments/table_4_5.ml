open Accent_core
open Accent_util

type row = {
  name : string;
  iou_s : float;
  rs_s : float;
  copy_s : float;
  paper : Paper.row_4_5 option;
}

let rows sweep =
  List.map
    (fun (rep : Sweep.rep_results) ->
      let name = rep.Sweep.spec.Accent_workloads.Spec.name in
      let rimas (result : Trial.result) =
        Report.rimas_transfer_seconds result.Trial.report
      in
      {
        name;
        iou_s = rimas (Sweep.iou_at rep 0);
        rs_s = rimas (Sweep.rs_at rep 0);
        copy_s = rimas rep.Sweep.copy;
        paper =
          List.find_opt (fun p -> p.Paper.name = name) Paper.table_4_5;
      })
    sweep

let render rows =
  let t =
    Text_table.create
      ~title:
        "Table 4-5: Address Space Transfer Times in Seconds (paper values \
         in parentheses)"
      [
        ("", Text_table.Left);
        ("Pure-IOU", Text_table.Right);
        ("RS", Text_table.Right);
        ("Copy", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      let cell v paper_v =
        match paper_v with
        | Some p -> Printf.sprintf "%.2f (%.2f)" v p
        | None -> Printf.sprintf "%.2f" v
      in
      Text_table.add_row t
        [
          r.name;
          cell r.iou_s (Option.map (fun p -> p.Paper.iou_s) r.paper);
          cell r.rs_s (Option.map (fun p -> p.Paper.rs_s) r.paper);
          cell r.copy_s (Option.map (fun p -> p.Paper.copy_s) r.paper);
        ])
    rows;
  Text_table.render t

let max_copy_over_iou rows =
  List.fold_left
    (fun acc r -> Float.max acc (r.copy_s /. Float.max 1e-9 r.iou_s))
    0. rows
