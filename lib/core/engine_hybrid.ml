open Accent_ipc
open Accent_kernel
open Transfer_engine

type Message.payload +=
  | Mig_hybrid_pages of {
      proc_id : int;
      round : int;
      src_port : Port.id;  (** where the acknowledgement goes *)
    }  (** memory object: working-set Data chunks, vaddr coordinates *)
  | Mig_hybrid_ack of { proc_id : int; round : int }
  | Mig_hybrid_final of {
      core : Context.core;
      report : Report.t;
      on_complete : (Proc.t -> Report.t -> unit) option;
    }
      (** memory object: residual dirty pages as Data plus the cold tail
          as IOU chunks, vaddr coordinates *)

(* --- source side -------------------------------------------------------- *)

let round_payload ctx ~proc_id ~round =
  Mig_hybrid_pages { proc_id; round; src_port = ctx.port }

(* residual = pages dirtied since the last round; unlike pre-copy,
   never-pushed pages are not shipped — they go cold on the manager's
   backing server and travel as IOUs *)
let residual_and_extra ctx image ~sent ~written =
  let residual_chunks =
    Image_wire.image_data_chunks image
      ~missing:"pre-copy: page vanished mid-round" written
  in
  List.iter (Image_wire.Sent.mark_page sent) written;
  (residual_chunks, Image_wire.cold_iou_chunks ctx image ~sent)

let freeze ctx outbound pool (state : Image_wire.push) =
  Image_wire.freeze_and_ship ctx outbound pool state
    ~residual_and_extra:(residual_and_extra ctx)
    ~final_payload:(fun ~core ->
      Mig_hybrid_final
        {
          core;
          report = state.Image_wire.out_report;
          on_complete = state.Image_wire.out_on_complete;
        })

(* --- the engine --------------------------------------------------------- *)

let start ctx outbound pool ~proc ~dest ~strategy ~report ~on_complete
    ~on_restart:_ =
  match strategy.Strategy.transfer with
  | Strategy.Hybrid { max_rounds; threshold_pages; window_ms } ->
      (* the process keeps executing at the source while rounds push its
         working set ahead of it *)
      let state =
        {
          Image_wire.proc;
          dest;
          max_rounds;
          threshold_pages;
          out_report = report;
          out_on_complete = on_complete;
          sent = Image_wire.Sent_pool.take pool;
        }
      in
      Hashtbl.replace outbound proc.Proc.id state;
      (* writes before the migration are plain source execution: the pages
         they touched ship with current values either in the window push
         or as cold IOUs, so reset dirty tracking to the rounds' epoch *)
      ignore (Proc.drain_written_log proc);
      Image_wire.send_push_round ctx state ~round:1
        ~pages:(Engine_iou.shippable_ws_pages ctx proc ~window_ms)
        ~payload:(round_payload ctx ~proc_id:proc.Proc.id)
  | _ -> assert false (* the manager dispatches on [claims] *)

let create ctx =
  (* source side of in-progress hybrid migrations, by proc id *)
  let outbound : (int, Image_wire.push) Hashtbl.t = Hashtbl.create 4 in
  (* destination side: pages staged by push rounds, keyed by proc id *)
  let staged : (int, Segment_store.t) Hashtbl.t = Hashtbl.create 4 in
  let pool = Image_wire.Sent_pool.create () in
  Mig_event.subscribe_cleanup ctx.bus (fun ev ->
      match ev.Mig_event.kind with
      | Mig_event.Transport_give_up | Mig_event.Engine_abort _ ->
          (match Hashtbl.find_opt outbound ev.Mig_event.proc_id with
          | Some state -> Image_wire.Sent_pool.give pool state.Image_wire.sent
          | None -> ());
          Hashtbl.remove outbound ev.Mig_event.proc_id;
          Hashtbl.remove staged ev.Mig_event.proc_id
      | _ -> ());
  let handle msg =
    match msg.Message.payload with
    | Mig_hybrid_pages { proc_id; round; src_port } ->
        Image_wire.handle_staged_pages ctx staged ~proc_id ~round ~src_port
          ~memory:(Option.value msg.Message.memory ~default:[])
          ~ack_payload:(fun ~proc_id ~round -> Mig_hybrid_ack { proc_id; round });
        true
    | Mig_hybrid_ack { proc_id; round } ->
        Image_wire.handle_push_ack ctx outbound ~proc_id ~round ~stray:"hybrid"
          ~freeze:(freeze ctx outbound pool)
          ~payload:(round_payload ctx ~proc_id);
        true
    | Mig_hybrid_final { core; report; on_complete } ->
        Image_wire.handle_final ctx staged ~core ~report ~on_complete
          ~memory:(Option.value msg.Message.memory ~default:[])
          ~assemble:Image_wire.assemble_lazy;
        true
    | _ -> false
  in
  let give_up_proc = function
    | Mig_hybrid_pages { proc_id; _ } -> Some proc_id
    | Mig_hybrid_final { core; _ } -> Some core.Context.proc_id
    (* a lost ack only delays the next round decision *)
    | _ -> None
  in
  {
    name = "hybrid";
    claims = (function Strategy.Hybrid _ -> true | _ -> false);
    start = start ctx outbound pool;
    handle;
    give_up_proc;
    debug_stats =
      (fun () ->
        [
          ("outbound", Hashtbl.length outbound);
          ("staged", Hashtbl.length staged);
        ]);
  }
