(* The generic copy-on-reference facility, outside migration.

   §2.2: "Any process may create an imaginary segment based on one of its
   ports, map all or part of it into its address space and pass this
   memory to another process via an IPC message" — and §6 suggests remote
   file access as an application.  Here a file server on host 1 backs a
   4 MB "file" with an imaginary segment; a client on host 0 maps the
   whole file but reads only a handful of records, so only those pages
   ever cross the network.

   Run with: dune exec examples/lazy_file_server.exe *)

open Accent_sim
open Accent_mem
open Accent_kernel
open Accent_core

let file_bytes = 4 * 1024 * 1024
let record_bytes = 2048 (* 4 pages *)

let () =
  let world = World.create ~n_hosts:2 () in
  let client_host = World.host world 0 and server_host = World.host world 1 in

  (* The server: a backing process whose segment holds the file image. *)
  let server = Backing_server.create server_host ~name:"file-server" in
  let segment_id = Backing_server.new_segment server in
  let file_image =
    Bytes.init file_bytes (fun i -> Char.chr (((i / 512) + (i mod 512)) mod 256))
  in
  Backing_server.put_bytes server ~segment_id ~offset:0 file_image;

  (* The client maps the whole file copy-on-reference at 16 MB. *)
  let space = Host.new_space client_host ~name:"client" in
  let file_base = 16 * 1024 * 1024 in
  Backing_server.map_into server client_host space ~at:file_base ~segment_id
    ~offset:0 ~len:file_bytes;
  Format.printf "client mapped a %s file; nothing transferred yet (%s on the wire)@."
    (Accent_util.Bytesize.to_string file_bytes)
    (Accent_util.Bytesize.to_string
       (Accent_net.Link.bytes_sent world.World.link));

  (* Read five records scattered through the file: a trace touching 4
     pages per record. *)
  let records = [ 3; 512; 1024; 1700; 2000 ] in
  let steps =
    List.concat_map
      (fun record ->
        let addr = file_base + (record * record_bytes) in
        List.init (record_bytes / Page.size) (fun i ->
            {
              Trace.page = Page.index_of_addr addr + i;
              think_ms = 5.;
              write = false;
            }))
      records
  in
  let client =
    Host.spawn client_host ~name:"client" ~trace:(Trace.of_steps steps)
      ~space ()
  in
  let finished = ref false in
  client.Proc.on_complete <- Some (fun _ -> finished := true);
  Proc_runner.start client_host client;
  ignore (World.run world);
  assert !finished;

  (* Verify the fetched records byte-for-byte against the server's image. *)
  List.iter
    (fun record ->
      let addr = file_base + (record * record_bytes) in
      for i = 0 to (record_bytes / Page.size) - 1 do
        let idx = Page.index_of_addr addr + i in
        match Address_space.page_data space idx with
        | Some page ->
            let offset = (record * record_bytes) + (i * Page.size) in
            assert (Bytes.equal page (Bytes.sub file_image offset Page.size))
        | None -> failwith "record page missing"
      done)
    records;

  let moved = Accent_net.Link.bytes_sent world.World.link in
  Format.printf
    "read %d records (%s of data) in %a; %s crossed the wire — %.1f%% of \
     the file, all of it verified byte-exact.@." (List.length records)
    (Accent_util.Bytesize.to_string (List.length records * record_bytes))
    Time.pp (World.now world)
    (Accent_util.Bytesize.to_string moved)
    (100. *. float_of_int moved /. float_of_int file_bytes);
  Format.printf "server answered %d faults, %d pages.@."
    (Backing_server.faults_served server)
    (Backing_server.pages_served server)
