lib/experiments/cluster_scenario.ml: Accent_core Accent_kernel Accent_sim Accent_util Accent_workloads Auto_migrator Engine Host List Option Printf Proc Proc_runner String Time World
