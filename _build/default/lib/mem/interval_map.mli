(** Maps from half-open integer intervals to values.

    This is the workhorse behind sparse address spaces and accessibility
    maps: a 4 GB Lisp address space that is 99.9% untouched zero-fill is two
    or three intervals, not eight million page entries.

    Invariants maintained: intervals never overlap, and adjacent intervals
    carrying equal values are coalesced, so the representation of any
    total assignment is canonical. *)

type 'a t

val empty : ?equal:('a -> 'a -> bool) -> unit -> 'a t
(** [equal] (default [( = )]) decides when adjacent intervals coalesce. *)

val is_empty : 'a t -> bool

val set : 'a t -> lo:int -> hi:int -> 'a -> 'a t
(** [set t ~lo ~hi v] assigns [v] on [lo, hi), overwriting any previous
    assignment there and splitting partially-overlapped intervals.  Empty
    ranges are a no-op. *)

val clear : 'a t -> lo:int -> hi:int -> 'a t
(** Remove any assignment on [lo, hi). *)

val find : 'a t -> int -> 'a option
(** Value at a point, if assigned. *)

val find_interval : 'a t -> int -> (int * int * 'a) option
(** [(lo, hi, v)] of the interval containing the point, if any. *)

val ranges : 'a t -> (int * int * 'a) list
(** All intervals in increasing order. *)

val cardinal : 'a t -> int
(** Number of stored intervals. *)

val fold : 'a t -> init:'b -> f:('b -> int -> int -> 'a -> 'b) -> 'b
(** Fold over intervals in increasing order: [f acc lo hi v]. *)

val fold_range : 'a t -> lo:int -> hi:int -> init:'b ->
  f:('b -> int -> int -> 'a -> 'b) -> 'b
(** Like [fold], but over the intersection with [lo, hi); interval bounds
    passed to [f] are clipped. *)

val iter_range : 'a t -> lo:int -> hi:int -> f:(int -> int -> 'a -> unit) ->
  unit

val total_length : 'a t -> int
(** Sum of interval lengths. *)

val length_where : 'a t -> f:('a -> bool) -> int
(** Summed length of intervals whose value satisfies [f]. *)

val next_unassigned : 'a t -> int -> int option
(** [next_unassigned t x] is the smallest [y >= x] carrying no assignment,
    or [None] if assignments cover everything from [x] to [max_int]. *)

val check_invariants : 'a t -> bool
(** For tests: intervals are well-formed, sorted, non-overlapping,
    non-empty, and maximally coalesced. *)
