(* accentctl: command-line driver for the Accent migration testbed.
   `accentctl migrate --workload lisp-del --strategy iou --prefetch 3`
   runs one trial and prints its report. *)

open Cmdliner

let strategy_of_string name prefetch =
  match String.lowercase_ascii name with
  | "copy" | "pure-copy" -> Ok Accent_core.Strategy.pure_copy
  | "iou" | "pure-iou" -> Ok (Accent_core.Strategy.pure_iou ~prefetch ())
  | "rs" | "resident-set" ->
      Ok (Accent_core.Strategy.resident_set ~prefetch ())
  | "precopy" | "pre-copy" -> Ok (Accent_core.Strategy.pre_copy ())
  | "ws" | "working-set" -> Ok (Accent_core.Strategy.working_set ~prefetch ())
  | "hybrid" -> Ok (Accent_core.Strategy.hybrid ())
  | other -> Error (Printf.sprintf "unknown strategy %S" other)

let workload_arg =
  let doc =
    "Representative process: minprog, lisp-t, lisp-del, pm-start, pm-mid, \
     pm-end, chess."
  in
  Arg.(value & opt string "minprog" & info [ "w"; "workload" ] ~doc)

let strategy_arg =
  let doc = "Transfer strategy: copy, iou, rs, ws, precopy, or hybrid." in
  Arg.(value & opt string "iou" & info [ "s"; "strategy" ] ~doc)

let prefetch_arg =
  let doc = "Pages to prefetch per imaginary fault (0, 1, 3, 7, 15)." in
  Arg.(value & opt int 0 & info [ "p"; "prefetch" ] ~doc)

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc)

let loss_arg =
  let doc =
    "I.i.d. fragment loss rate in percent (0-100).  Any value, even 0, \
     switches the NetMsgServers to the reliable sliding-window transport."
  in
  Arg.(value & opt (some float) None & info [ "loss" ] ~docv:"PCT" ~doc)

let partition_arg =
  let doc =
    "Scheduled network partition $(docv) in milliseconds: every fragment \
     between the hosts during the window is dropped, after which the \
     partition heals.  Enables the reliable transport."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "partition" ] ~docv:"START:DUR" ~doc)

(* --loss and --partition compose into one fault plan; either alone (and
   --loss 0) still turns the ARQ transport on. *)
let fault_plan_of ~loss ~partition =
  match (loss, partition) with
  | None, None -> Ok None
  | _ -> (
      let plan =
        match loss with
        | Some pct when pct < 0. || pct > 100. ->
            Printf.eprintf "--loss must be between 0 and 100\n";
            exit 1
        | Some pct -> Accent_net.Fault_plan.iid (pct /. 100.)
        | None -> Accent_net.Fault_plan.none
      in
      match partition with
      | None -> Ok (Some plan)
      | Some s -> (
          match String.split_on_char ':' s with
          | [ a; b ] -> (
              match (float_of_string_opt a, float_of_string_opt b) with
              | Some start_ms, Some duration_ms
                when start_ms >= 0. && duration_ms >= 0. ->
                  Ok
                    (Some
                       (Accent_net.Fault_plan.with_partition ~start_ms
                          ~duration_ms plan))
              | _ -> Error "bad --partition: START and DUR must be numbers")
          | _ -> Error "bad --partition: expected START:DUR in milliseconds"))

let migrate workload strategy prefetch seed loss partition =
  match Accent_workloads.Representative.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | Some spec -> (
      match
        (strategy_of_string strategy prefetch, fault_plan_of ~loss ~partition)
      with
      | Error e, _ | _, Error e ->
          prerr_endline e;
          exit 1
      | Ok strategy, Ok fault_plan ->
          let result =
            Accent_experiments.Trial.run ~seed ?fault_plan ~spec ~strategy ()
          in
          Format.printf "%a@.@." Accent_core.Report.pp_summary
            result.Accent_experiments.Trial.report;
          print_string
            (Accent_experiments.Utilization.render
               ~duration_s:
                 (Accent_core.Report.end_to_end_seconds
                    result.Accent_experiments.Trial.report)
               (Accent_experiments.Utilization.of_world
                  result.Accent_experiments.Trial.world)))

let migrate_cmd =
  let doc = "migrate one representative process and report the trial" in
  Cmd.v
    (Cmd.info "migrate" ~doc)
    Term.(
      const migrate $ workload_arg $ strategy_arg $ prefetch_arg $ seed_arg
      $ loss_arg $ partition_arg)

let csv_arg =
  let doc = "Also write machine-readable CSVs of every table and figure \
             into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let tables_cmd =
  let doc = "regenerate every table and figure of the paper's evaluation" in
  Cmd.v
    (Cmd.info "evaluate" ~doc)
    Term.(
      const (fun csv_dir ->
          Accent_experiments.Evaluation.run_all ?csv_dir ())
      $ csv_arg)

let inspect workload loss partition =
  match Accent_workloads.Representative.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | Some spec ->
      let fault_plan =
        match fault_plan_of ~loss ~partition with
        | Ok p -> p
        | Error e ->
            prerr_endline e;
            exit 1
      in
      let world, proc =
        Accent_experiments.Trial.build_only ?fault_plan ~spec ()
      in
      let space = Accent_kernel.Proc.space_exn proc in
      let open Accent_mem in
      Format.printf "%s — %s@.@." spec.Accent_workloads.Spec.name
        spec.Accent_workloads.Spec.description;
      Format.printf "composition at migration point:@.";
      Format.printf "  RealMem   %11s  (%d pages, %d resident)@."
        (Accent_util.Bytesize.with_commas (Address_space.real_bytes space))
        (Address_space.pages_materialized space)
        (Address_space.resident_page_count space);
      Format.printf "  RealZero  %11s@."
        (Accent_util.Bytesize.with_commas (Address_space.zero_bytes space));
      Format.printf "  Total     %11s in %d regions, %d VM segments@."
        (Accent_util.Bytesize.with_commas (Address_space.total_bytes space))
        (Address_space.region_count space)
        (Address_space.vm_segment_count space);
      let trace = proc.Accent_kernel.Proc.trace in
      Format.printf "@.post-migration behaviour:@.";
      Format.printf "  %d references over %d distinct pages, %.1fs of compute@."
        (Accent_kernel.Trace.length trace)
        (Accent_kernel.Trace.distinct_pages trace)
        (Accent_kernel.Trace.total_think_ms trace /. 1000.);
      let amap = Address_space.build_amap space in
      Format.printf "@.AMap: %d entries, %s on the wire@."
        (Amap.entry_count amap)
        (Accent_util.Bytesize.to_string (Amap.wire_size amap));
      let open Accent_net in
      let link = world.Accent_core.World.link in
      let lp = Link.params_of link in
      Format.printf "@.network link:@.";
      Format.printf
        "  %.1f Mbit/s, %.1f ms latency, %d B fragments (+%d B header)@."
        (lp.Link.bytes_per_ms *. 8. /. 1000.)
        lp.Link.latency_ms lp.Link.fragment_bytes lp.Link.fragment_overhead_bytes;
      (match
         Netmsgserver.reliability
           (Accent_kernel.Host.nms (Accent_core.World.host world 0))
       with
      | None ->
          Format.printf
            "  transport: 1987 stop-and-wait pipeline (window %d), reliable \
             wire assumed@."
            world.Accent_core.World.costs.Accent_kernel.Cost_model.nms
              .Netmsgserver.flow_window
      | Some rel ->
          let p = Reliable.params_of rel in
          Format.printf
            "  transport: sliding-window ARQ — window %d, %d B acks, RTO \
             %.0f ms ×%.1f up to %.0f ms, %d retries@."
            p.Reliable.window p.Reliable.ack_bytes p.Reliable.initial_rto_ms
            p.Reliable.rto_backoff p.Reliable.max_rto_ms p.Reliable.max_retries);
      Format.printf "  fault plan: @[<v>%a@]@." Fault_plan.pp
        (Link.fault_plan link)

let workloads () =
  let table =
    Accent_util.Text_table.create
      ~title:"The seven representative processes (paper Section 4.1)"
      [
        ("name", Accent_util.Text_table.Left);
        ("Real", Accent_util.Text_table.Right);
        ("Total", Accent_util.Text_table.Right);
        ("RS", Accent_util.Text_table.Right);
        ("touched", Accent_util.Text_table.Right);
        ("description", Accent_util.Text_table.Left);
      ]
  in
  List.iter
    (fun spec ->
      Accent_util.Text_table.add_row table
        [
          spec.Accent_workloads.Spec.name;
          Accent_util.Bytesize.to_string spec.Accent_workloads.Spec.real_bytes;
          Accent_util.Bytesize.to_string spec.Accent_workloads.Spec.total_bytes;
          Accent_util.Bytesize.to_string spec.Accent_workloads.Spec.rs_bytes;
          Printf.sprintf "%.0f%%"
            (100.
            *. float_of_int spec.Accent_workloads.Spec.touched_real_pages
            /. float_of_int (Accent_workloads.Spec.real_pages spec));
          spec.Accent_workloads.Spec.description;
        ])
    Accent_workloads.Representative.all;
  Accent_util.Text_table.print table

let workloads_cmd =
  let doc = "list the representative workloads" in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const workloads $ const ())

let inspect_cmd =
  let doc =
    "show a representative workload's reconstructed state and the network \
     configuration it would migrate over"
  in
  Cmd.v
    (Cmd.info "inspect" ~doc)
    Term.(const inspect $ workload_arg $ loss_arg $ partition_arg)

let losssweep workload seed csv =
  let spec =
    match Accent_workloads.Representative.by_name workload with
    | Some spec -> spec
    | None ->
        Printf.eprintf "unknown workload %S\n" workload;
        exit 1
  in
  let t = Accent_experiments.Loss_sweep.run ~seed ~spec () in
  print_string (Accent_experiments.Loss_sweep.render t);
  match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Accent_experiments.Loss_sweep.to_csv t);
      close_out oc;
      Printf.printf "\nwrote %s\n" path

let losssweep_workload_arg =
  let doc = "Representative process to sweep (default pm-start)." in
  Arg.(value & opt string "pm-start" & info [ "w"; "workload" ] ~doc)

let losssweep_csv_arg =
  let doc = "Also write the sweep as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let losssweep_cmd =
  let doc =
    "re-run the Figure 4-3 byte comparison across fragment loss rates with \
     the reliable transport enabled"
  in
  Cmd.v
    (Cmd.info "losssweep" ~doc)
    Term.(
      const losssweep $ losssweep_workload_arg $ seed_arg $ losssweep_csv_arg)

let dedupsweep workload seed csv =
  let spec =
    match Accent_workloads.Representative.by_name workload with
    | Some spec -> spec
    | None ->
        Printf.eprintf "unknown workload %S\n" workload;
        exit 1
  in
  let t = Accent_experiments.Dedup_sweep.run ~seed ~spec () in
  print_string (Accent_experiments.Dedup_sweep.render t);
  match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Accent_experiments.Dedup_sweep.to_csv t);
      close_out oc;
      Printf.printf "\nwrote %s\n" path

let dedupsweep_cmd =
  let doc =
    "measure the wire bytes the content-addressed (digest-first) transfer \
     saves when migrating to a host that already holds part of the \
     process's pages"
  in
  Cmd.v
    (Cmd.info "dedupsweep" ~doc)
    Term.(
      const dedupsweep $ losssweep_workload_arg $ seed_arg $ losssweep_csv_arg)

let trace workload strategy prefetch seed loss partition out pretty =
  match Accent_workloads.Representative.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | Some spec -> (
      match
        (strategy_of_string strategy prefetch, fault_plan_of ~loss ~partition)
      with
      | Error e, _ | _, Error e ->
          prerr_endline e;
          exit 1
      | Ok strategy, Ok fault_plan ->
          let oc, close =
            match out with
            | None -> (stdout, fun () -> flush stdout)
            | Some path ->
                let oc = open_out path in
                (oc, fun () -> close_out oc)
          in
          let on_event =
            if pretty then (
              let ppf = Format.formatter_of_out_channel oc in
              fun ev -> Format.fprintf ppf "%a@." Accent_core.Mig_event.pp ev)
            else Accent_core.Mig_event.jsonl_writer oc
          in
          let result =
            Accent_experiments.Trial.run ~seed ?fault_plan ~on_event ~spec
              ~strategy ()
          in
          close ();
          (match out with
          | Some path -> Printf.eprintf "wrote %s\n" path
          | None -> ());
          ignore result.Accent_experiments.Trial.report)

let trace_out_arg =
  let doc = "Write the trace to $(docv) instead of standard output." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let trace_pretty_arg =
  let doc = "Human-readable lines instead of JSONL." in
  Arg.(value & flag & info [ "pretty" ] ~doc)

let trace_cmd =
  let doc =
    "run one migration trial and stream every migration event as JSON lines"
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const trace $ workload_arg $ strategy_arg $ prefetch_arg $ seed_arg
      $ loss_arg $ partition_arg $ trace_out_arg $ trace_pretty_arg)

let compare_workload workload prefetch seed =
  match Accent_workloads.Representative.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | Some spec ->
      let open Accent_core in
      let table =
        Accent_util.Text_table.create
          ~title:(Printf.sprintf "%s under every strategy" spec.Accent_workloads.Spec.name)
          [
            ("strategy", Accent_util.Text_table.Left);
            ("transfer (s)", Accent_util.Text_table.Right);
            ("exec (s)", Accent_util.Text_table.Right);
            ("end-to-end (s)", Accent_util.Text_table.Right);
            ("downtime (s)", Accent_util.Text_table.Right);
            ("bytes", Accent_util.Text_table.Right);
            ("faults", Accent_util.Text_table.Right);
          ]
      in
      List.iter
        (fun strategy ->
          let result =
            Accent_experiments.Trial.run ~seed ~write_fraction:0.1 ~spec
              ~strategy ()
          in
          let r = result.Accent_experiments.Trial.report in
          Accent_util.Text_table.add_row table
            [
              Strategy.name strategy;
              Accent_util.Text_table.cell_f (Report.transfer_seconds r);
              Accent_util.Text_table.cell_f (Report.remote_execution_seconds r);
              Accent_util.Text_table.cell_f (Report.end_to_end_seconds r);
              Accent_util.Text_table.cell_f (Report.downtime_seconds r);
              Accent_util.Text_table.cell_bytes (Report.bytes_total r);
              string_of_int r.Report.dest_faults_imag;
            ])
        [
          Strategy.pure_copy;
          Strategy.pure_iou ~prefetch ();
          Strategy.resident_set ~prefetch ();
          Strategy.pre_copy ();
          Strategy.hybrid ();
        ];
      Accent_util.Text_table.print table

let compare_cmd =
  let doc = "run one workload under every strategy and tabulate" in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const compare_workload $ workload_arg $ prefetch_arg $ seed_arg)

(* --- the cluster runtime ------------------------------------------------ *)

let cluster hosts jobs churn policy domains seed json =
  if churn <= 0. then begin
    (* the original closed-batch experiment: a burst of jobs arriving on
       one host of a small cluster.  Bare `accentctl cluster` reproduces
       the classic 3-host policy table. *)
    let config =
      {
        Accent_experiments.Cluster_scenario.default_config with
        Accent_experiments.Cluster_scenario.n_hosts =
          Option.value ~default:3 hosts;
        n_jobs = Option.value ~default:6 jobs;
        seed;
      }
    in
    print_string
      (Accent_experiments.Cluster_scenario.render
         (Accent_experiments.Cluster_scenario.compare_policies ~config ()))
  end
  else begin
    (* the open workload: Poisson arrivals at --churn jobs/s cluster-wide,
       every placement policy compared on its own world *)
    let config =
      {
        Accent_experiments.Cluster_scenario.default_churn with
        Accent_experiments.Cluster_scenario.hosts =
          Option.value ~default:100 hosts;
        jobs = Option.value ~default:2_000 jobs;
        arrival_rate_per_s = churn;
        churn_seed = seed;
      }
    in
    let policies =
      match policy with
      | None ->
          Accent_experiments.Cluster_scenario.default_churn_policies ()
      | Some name -> (
          match Accent_core.Placement_policy.by_name name with
          | Some p -> [ p ]
          | None ->
              Printf.eprintf
                "unknown policy %S (threshold, destination-swap, random, \
                 static)\n"
                name;
              exit 1)
    in
    let results =
      Accent_experiments.Cluster_scenario.compare_churn ~config ~domains
        ~policies ()
    in
    print_string
      (Accent_experiments.Cluster_scenario.render_churn results);
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Printf.fprintf oc
          "{\n  \"benchmark\": \"cluster\",\n  \"mode\": \"ctl\",\n  \
           \"policies\": [\n%s\n  ]\n}\n"
          (String.concat ",\n"
             (List.map
                (fun r ->
                  "    " ^ Accent_experiments.Cluster_scenario.churn_json r)
                results));
        close_out oc;
        Printf.printf "\nwrote %s\n" path
  end

let cluster_hosts_arg =
  let doc =
    "Cluster size (default: 3 for the batch table, 100 under --churn)."
  in
  Arg.(value & opt (some int) None & info [ "hosts" ] ~doc)

let cluster_jobs_arg =
  let doc =
    "Total jobs (default: 6 for the batch table, 2000 under --churn)."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~doc)

let cluster_churn_arg =
  let doc =
    "Cluster-wide Poisson arrival rate in jobs per second.  0 (the \
     default) runs the classic closed-batch comparison instead of the \
     open workload."
  in
  Arg.(value & opt float 0. & info [ "churn" ] ~docv:"RATE" ~doc)

let cluster_policy_arg =
  let doc =
    "Run only this placement policy (threshold, destination-swap, random, \
     static); default compares all four."
  in
  Arg.(value & opt (some string) None & info [ "policy" ] ~doc)

let cluster_domains_arg =
  let doc = "Fan the per-policy worlds over this many OCaml domains." in
  Arg.(value & opt int 1 & info [ "domains" ] ~doc)

let cluster_json_arg =
  let doc = "Also write the churn comparison as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let cluster_cmd =
  let doc =
    "compare placement policies on a simulated cluster — the classic \
     3-host batch table by default, or the open Poisson workload at \
     datacenter scale with --churn"
  in
  Cmd.v
    (Cmd.info "cluster" ~doc)
    Term.(
      const cluster $ cluster_hosts_arg $ cluster_jobs_arg $ cluster_churn_arg
      $ cluster_policy_arg $ cluster_domains_arg $ seed_arg $ cluster_json_arg)

(* --- checkpoint / restore / crash recovery ------------------------------ *)

let checkpoint workload seed out =
  match Accent_workloads.Representative.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %S\n" workload;
      exit 1
  | Some spec ->
      let open Accent_core in
      let world, proc = Accent_experiments.Trial.build_only ~seed ~spec () in
      let h0 = World.host world 0 in
      let store =
        Accent_net.Content_store.create
          ~capacity_pages:((Accent_workloads.Spec.real_pages spec * 2) + 256)
          ()
      in
      let ck =
        Checkpoint.save ~bus:world.World.bus ~at:(World.now world) store
          (Accent_kernel.Proc_image.capture h0 proc)
      in
      Checkpoint.write_file out store ck;
      let distinct =
        List.length (List.sort_uniq compare (Checkpoint.digests ck))
      in
      Printf.printf
        "checkpointed %s at its migration point: %d pages (%d distinct by \
         digest)\nwrote %s\n"
        (Checkpoint.proc_name ck) (Checkpoint.pages ck) distinct out

let ckpt_file_arg =
  let doc = "Checkpoint file." in
  Arg.(value & opt string "proc.ckpt" & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let checkpoint_cmd =
  let doc =
    "build a representative process at its migration point and save a \
     durable, digest-named image of it to a file"
  in
  Cmd.v
    (Cmd.info "checkpoint" ~doc)
    Term.(const checkpoint $ workload_arg $ seed_arg $ ckpt_file_arg)

let restore file seed =
  let open Accent_core in
  let world = World.create ~seed ~n_hosts:1 () in
  let h0 = World.host world 0 in
  let store = Accent_net.Content_store.create ~capacity_pages:65_536 () in
  let ck =
    try Checkpoint.read_file file store
    with Sys_error e ->
      prerr_endline e;
      exit 1
  in
  let finished = ref None in
  Checkpoint.restore ~bus:world.World.bus store h0 ck ~k:(fun p ->
      p.Accent_kernel.Proc.on_complete <-
        Some (fun _ -> finished := Some (World.now world));
      Accent_kernel.Proc_runner.start h0 p);
  ignore (World.run world);
  Printf.printf "restored %s from %s: %d pages digest-verified\n"
    (Checkpoint.proc_name ck) file (Checkpoint.pages ck);
  match !finished with
  | Some at ->
      Printf.printf "ran its remaining reference trace, done at %.2fs \
                     (virtual)\n"
        (Accent_sim.Time.to_seconds at)
  | None -> Printf.printf "process did not run to completion\n"

let restore_file_arg =
  let doc = "Checkpoint file written by $(b,accentctl checkpoint)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let restore_cmd =
  let doc =
    "rebuild a process from a checkpoint file (every page re-derived and \
     checked against its recorded digest) and run it to completion"
  in
  Cmd.v (Cmd.info "restore" ~doc) Term.(const restore $ restore_file_arg $ seed_arg)

let crashsweep workload seed seeds kills csv json =
  let spec =
    match Accent_workloads.Representative.by_name workload with
    | Some spec -> spec
    | None ->
        Printf.eprintf "unknown workload %S\n" workload;
        exit 1
  in
  let kill_fracs =
    match kills with
    | None -> Accent_experiments.Crash_recovery.default_kill_fracs
    | Some s -> (
        match
          List.map float_of_string_opt (String.split_on_char ',' s)
        with
        | fracs when List.for_all Option.is_some fracs && fracs <> [] ->
            List.map Option.get fracs
        | _ ->
            Printf.eprintf
              "bad --kills: expected comma-separated fractions, e.g. \
               0.25,0.5,0.75\n";
            exit 1)
  in
  let t =
    Accent_experiments.Crash_recovery.run ~seed ~seeds ~spec ~kill_fracs ()
  in
  print_string (Accent_experiments.Crash_recovery.render t);
  (match csv with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Accent_experiments.Crash_recovery.to_csv t);
      close_out oc;
      Printf.printf "\nwrote %s\n" path);
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Accent_experiments.Crash_recovery.to_json t);
      close_out oc;
      Printf.printf "\nwrote %s\n" path

let crashsweep_seeds_arg =
  let doc = "Independent worlds per strategy." in
  Arg.(value & opt int 3 & info [ "seeds" ] ~doc)

let crashsweep_kills_arg =
  let doc =
    "Comma-separated kill points as fractions of the clean transfer window \
     (default 0.25,0.5,0.75)."
  in
  Arg.(value & opt (some string) None & info [ "kills" ] ~docv:"FRACS" ~doc)

let crashsweep_json_arg =
  let doc = "Also write the per-strategy summaries as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let crashsweep_cmd =
  let doc =
    "checkpoint, kill the source host mid-migration at swept kill points, \
     restore on the survivor; report p50/p99 recovery downtime vs. clean \
     migration for every strategy"
  in
  Cmd.v
    (Cmd.info "crashsweep" ~doc)
    Term.(
      const crashsweep $ losssweep_workload_arg $ seed_arg
      $ crashsweep_seeds_arg $ crashsweep_kills_arg $ losssweep_csv_arg
      $ crashsweep_json_arg)

let ablate_cmd =
  let doc = "run the design-choice ablations (bandwidth, caching, backer \
             load, memory pressure, strategy face-off)" in
  Cmd.v
    (Cmd.info "ablate" ~doc)
    Term.(const (fun () -> Accent_experiments.Ablations.run_all ()) $ const ())

let main_cmd =
  let doc = "Accent copy-on-reference process migration testbed" in
  Cmd.group (Cmd.info "accentctl" ~doc)
    [
      migrate_cmd;
      trace_cmd;
      tables_cmd;
      ablate_cmd;
      inspect_cmd;
      compare_cmd;
      workloads_cmd;
      losssweep_cmd;
      dedupsweep_cmd;
      cluster_cmd;
      checkpoint_cmd;
      restore_cmd;
      crashsweep_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
