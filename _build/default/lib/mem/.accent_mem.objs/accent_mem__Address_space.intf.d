lib/mem/address_space.mli: Accessibility Amap Page Paging_disk Phys_mem Vaddr
