(** Figure 4-4: elapsed node time spent processing the IPC messages of each
    trial (both hosts' NetMsgServer and kernel IPC CPUs), plus the headline
    average savings. *)

val seconds : Trial.result -> float
val render : Sweep.t -> string

val mean_iou_savings_pct : Sweep.t -> float
(** 47.8% in the paper (IOU, no prefetch, vs pure-copy). *)

val pf1_reduces_cost : Sweep.t -> bool
(** §4.4.2: one page of prefetch slightly reduces total message-handling
    time across the representatives; more starts increasing it again. *)
