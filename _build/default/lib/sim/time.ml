type t = float

let zero = 0.
let ms x = x
let seconds x = x *. 1000.
let to_seconds t = t /. 1000.
let to_ms t = t
let add = ( +. )
let diff later earlier = later -. earlier
let compare = Float.compare
let pp ppf t = Format.fprintf ppf "%.3fs" (to_seconds t)
