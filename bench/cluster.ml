(* The cluster benchmark: the open-workload (churn) scenario at
   datacenter scale.

   Three sections land in BENCH_cluster.json:

     - "policies": the four placement policies (static, random,
       threshold, destination-swap) compared on one churn configuration —
       migration rate, p50/p99 downtime, bytes on the wire, turnaround;
     - "big_run": a 1000-host run sized to execute over a million
       simulation events, as a single-world scalability probe, with the
       allocation meters on (minor words per event, live words after the
       departed jobs are released) — smoke mode runs a smaller gate
       configuration so CI can hold both throughput and allocation to a
       committed baseline (bench/BASELINE_cluster.json);
     - "sweep": the same seed sweep run sequentially and fanned over
       OCaml domains (Accent_util.Domain_pool), with the per-seed results
       asserted structurally identical and the measured speedup reported.
       The speedup is honest: it also records how many cores the machine
       actually has, since a single-core box cannot show one.

   Run with:  dune exec bench/cluster.exe            (full sweep)
              dune exec bench/cluster.exe -- --smoke (tiny, for CI)
   Flags: --out PATH, --domains N, --seeds K. *)

open Accent_core
open Accent_experiments

let time f =
  let wall0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. wall0)

(* --- configurations ----------------------------------------------------- *)

let smoke_config =
  {
    Cluster_scenario.default_churn with
    Cluster_scenario.hosts = 20;
    jobs = 200;
    arrival_rate_per_s = 20.;
    job_think_ms = 2_000.;
  }

(* ~55 events per job (measured), so 20_000 jobs clears a million events
   comfortably while a thousand hosts keep per-host contention low *)
let big_config =
  {
    Cluster_scenario.default_churn with
    Cluster_scenario.hosts = 1_000;
    jobs = 20_000;
    arrival_rate_per_s = 400.;
    job_think_ms = 3_000.;
  }

(* the smoke-mode instrumented run: small enough for CI, large enough
   that events-per-second and words-per-event are stable *)
let gate_config =
  {
    smoke_config with
    Cluster_scenario.hosts = 50;
    jobs = 1_000;
    arrival_rate_per_s = 50.;
  }

let sweep_config smoke =
  if smoke then smoke_config
  else
    {
      Cluster_scenario.default_churn with
      Cluster_scenario.hosts = 200;
      jobs = 2_000;
      arrival_rate_per_s = 100.;
    }

(* --- driver ------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec flag name default = function
    | f :: v :: _ when f = name -> v
    | _ :: rest -> flag name default rest
    | [] -> default
  in
  let out = flag "--out" "BENCH_cluster.json" args in
  let domains =
    int_of_string (flag "--domains" (if smoke then "2" else "4") args)
  in
  let n_seeds = int_of_string (flag "--seeds" (if smoke then "2" else "4") args) in
  let config = if smoke then smoke_config else Cluster_scenario.default_churn in

  (* 1. policy comparison *)
  let policies, policies_wall =
    time (fun () -> Cluster_scenario.compare_churn ~config ())
  in
  print_string (Cluster_scenario.render_churn policies);
  Printf.printf "cluster: policy comparison in %.2f s\n%!" policies_wall;

  (* 2. the single-world probe with the allocation meters on: the
     1000-host million-event run in full mode, a smaller gate
     configuration in smoke mode (CI compares it against the committed
     baseline) *)
  let big =
    let cfg = if smoke then gate_config else big_config in
    let (r, gc), wall =
      time (fun () ->
          Cluster_scenario.run_churn_gc ~config:cfg
            ~policy:(Placement_policy.threshold ()) ())
    in
    Printf.printf
      "cluster: big run  %d hosts  %d events  %d migrations  %.2f s wall  \
       %.0f ev/s  %.1f minor words/event  %d live words after\n\
       %!"
      r.Cluster_scenario.hosts_n r.Cluster_scenario.events
      r.Cluster_scenario.migrations wall
      (float_of_int r.Cluster_scenario.events /. Float.max 1e-9 wall)
      gc.Cluster_scenario.minor_words_per_event
      gc.Cluster_scenario.live_words_after;
    if (not smoke) && r.Cluster_scenario.events < 1_000_000 then
      failwith
        (Printf.sprintf "cluster: big run executed only %d events (< 1M)"
           r.Cluster_scenario.events);
    (r, gc, wall)
  in

  (* 3. sequential vs domain-parallel seed sweep *)
  let seeds = List.init n_seeds (fun i -> Int64.of_int (1 + i)) in
  let sw_config = sweep_config smoke in
  let policy = Placement_policy.threshold () in
  let seq, seq_wall =
    time (fun () ->
        Cluster_scenario.churn_seed_sweep ~config:sw_config ~domains:1 ~policy
          ~seeds ())
  in
  let par, par_wall =
    time (fun () ->
        Cluster_scenario.churn_seed_sweep ~config:sw_config ~domains ~policy
          ~seeds ())
  in
  if seq <> par then
    failwith "cluster: parallel sweep diverged from sequential results";
  let cores = Accent_util.Domain_pool.recommended () in
  let speedup = seq_wall /. Float.max 1e-9 par_wall in
  Printf.printf
    "cluster: sweep of %d seeds  seq %.2f s  %d-domain %.2f s  speedup %.2fx \
     (machine has %d cores)  per-seed results identical\n\
     %!"
    n_seeds seq_wall domains par_wall speedup cores;

  (* --- JSON ------------------------------------------------------------- *)
  let oc = open_out out in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc {|  "benchmark": "cluster",%s|} "\n";
  Printf.fprintf oc {|  "mode": "%s",%s|} (if smoke then "smoke" else "full") "\n";
  Printf.fprintf oc "  \"policies\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun r -> "    " ^ Cluster_scenario.churn_json r)
          policies));
  (let r, gc, wall = big in
   Printf.fprintf oc
     "  \"big_run\": {\"wall_s\": %.3f, \"events_per_s\": %.1f, \
      \"minor_words\": %.0f, \"minor_words_per_event\": %.2f, \
      \"live_words_after\": %d, \"result\": %s},\n"
     wall
     (float_of_int r.Cluster_scenario.events /. Float.max 1e-9 wall)
     gc.Cluster_scenario.minor_words gc.Cluster_scenario.minor_words_per_event
     gc.Cluster_scenario.live_words_after
     (Cluster_scenario.churn_json r));
  Printf.fprintf oc
    "  \"sweep\": {\"seeds\": %d, \"domains\": %d, \"cores\": %d, \
     \"seq_wall_s\": %.3f, \"par_wall_s\": %.3f, \"speedup\": %.3f, \
     \"identical\": true, \"rows\": [\n%s\n  ]}\n"
    n_seeds domains cores seq_wall par_wall speedup
    (String.concat ",\n"
       (List.map (fun r -> "    " ^ Cluster_scenario.churn_json r) seq));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "cluster: wrote %s\n%!" out
