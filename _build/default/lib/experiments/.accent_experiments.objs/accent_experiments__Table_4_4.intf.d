lib/experiments/table_4_4.mli: Sweep
