lib/experiments/cluster_scenario.mli: Accent_core
