(** Table 4-5: address-space (RIMAS) transfer times in seconds under the
    three strategies, with the paper's values alongside.

    The headline lives here: pure-IOU times are nearly constant while
    pure-copy varies with RealMem size, making the extreme case (Lisp-Del)
    roughly three orders of magnitude cheaper to ship lazily. *)

type row = {
  name : string;
  iou_s : float;
  rs_s : float;
  copy_s : float;
  paper : Paper.row_4_5 option;
}

val rows : Sweep.t -> row list
val render : row list -> string

val max_copy_over_iou : row list -> float
(** The largest copy/IOU ratio — the paper's "up to 1,000 times faster". *)
