test/test_sim.ml: Accent_sim Accent_util Alcotest Engine Event_queue Format Fun Gen Ids List Option QCheck QCheck_alcotest Queue_server Time
