(** The migration event bus.

    Every observable moment of a migration — phase boundaries, pre-copy
    rounds, faults and prefetches at the destination, transport give-ups,
    the final outcome — is published as one typed event stamped with the
    virtual clock.  The transfer engines, the pager (via the
    MigrationManager's observer) and the reliable transport emit events
    here instead of poking {!Report} fields; the live report is maintained
    by folding each event into it as it is published, and
    {!fold_report} replays a recorded stream into a fresh report, so the
    two are equivalent by construction (a property the test suite checks).

    Subscribers see every event on the bus, including events for processes
    no migration is tracking (e.g. faults taken by a process that never
    moved are {e not} published — only hosts' pagers observed by a
    MigrationManager feed the bus). *)

type fault_kind = Fault_zero | Fault_disk | Fault_imaginary
type prefetch_kind = Prefetch_issued | Prefetch_hit

type kind =
  | Requested of { proc_name : string; strategy : Strategy.t }
      (** the source MigrationManager accepted the migration *)
  | Excised of Accent_kernel.Excise.timings
      (** ExciseProcess finished dismantling the source context *)
  | Core_delivered  (** the Core context message reached the destination *)
  | Rimas_delivered of { data_bytes : int }
      (** the RIMAS landed; [data_bytes] is its physically-shipped part *)
  | Inserted of { insert_ms : float }
      (** InsertProcess rebuilt the process ([insert_ms] is the modelled
          trap cost) *)
  | Restarted  (** the reincarnated process is about to resume *)
  | Frozen of { residual_bytes : int }
      (** pre-copy only: execution stopped at the source; [residual_bytes]
          is the dirty remainder the final message must carry *)
  | Precopy_round of { round : int; bytes : int }
      (** a pre-copy round was sent with [bytes] of page data *)
  | Fault of fault_kind  (** the observed host's pager took a fault *)
  | Prefetch of prefetch_kind
      (** an extra page was installed by prefetch, or a previously
          prefetched page was referenced *)
  | Dedup_digests of { pages : int; hits : int }
      (** dedup: the destination checked an advertisement of [pages] page
          digests and already held [hits] of them in its content store *)
  | Dedup_elided of { bytes : int }
      (** dedup: the source withheld [bytes] of page data whose digests
          the destination reported as already held *)
  | Checkpointed of { pages : int; new_bytes : int }
      (** {!Checkpoint.save} banked a durable process image: [pages] page
          digests recorded, of which [new_bytes] of page data were not
          already in the durable store (the rest deduplicated) *)
  | Restored of { pages : int }
      (** {!Checkpoint.restore} rebuilt the process; every one of its
          [pages] digest-resolved pages passed the integrity check *)
  | Transport_give_up
      (** the reliable transport abandoned a migration message *)
  | Engine_abort of { reason : string }
      (** a transfer engine hit an unrecoverable inconsistency (e.g. a
          page that should have been staged never arrived) and abandoned
          the migration instead of crashing; the fold marks the report
          [Aborted] (never restarted) or [Degraded] *)
  | Outcome of { outcome : Report.outcome; remote_touched_pages : int }
      (** the relocated process finished its remote execution *)
  | Auto_threshold of { src : int; spread : float }
      (** the {!Auto_migrator} saw the load spread between the most and
          least loaded host cross its imbalance threshold; [src] is the
          overloaded host.  [proc_id] is [-1]: no process is chosen yet. *)
  | Auto_candidate of { proc_name : string; src : int; dst : int }
      (** the {!Auto_migrator} chose [proc_name] (the event's [proc_id])
          to move from host [src] to host [dst] — the decision that
          explains the [Requested] event that follows *)

type t = {
  at : Accent_sim.Time.t;
  proc_id : int;  (** the migrating (or faulting) process *)
  kind : kind;
}

(** {2 The bus} *)

type bus

val create_bus : unit -> bus

val subscribe : bus -> (t -> unit) -> unit
(** Add an observer; it sees every published event, in publish order. *)

val subscribe_cleanup : bus -> (t -> unit) -> unit
(** Add an observer that sees only [Transport_give_up] and
    [Engine_abort] events.  The per-host migration engines use this
    channel to drop an abandoned migration's staged state, so their
    number never taxes the fault-path publish loop: with a
    thousand-host world sharing one bus, full-stream delivery would put
    every one of their closures in front of every page-fault event. *)

val register : bus -> proc_id:int -> Report.t -> unit
(** Route events for [proc_id] into [report]: each published event with
    that id is folded into the report via {!apply}.  A later registration
    for the same process replaces the earlier one (re-migration). *)

val publish : bus -> t -> unit
(** Fold the event into the registered report (if any), then notify
    subscribers. *)

(** {2 Report reconstruction} *)

val apply : Report.t -> t -> unit
(** The fold step: stamp/accumulate one event into a report.  Destination
    fault and prefetch events only count between [Restarted] and
    [Outcome], mirroring the destination-execution accounting window. *)

val fold_report : proc_id:int -> t list -> Report.t option
(** Rebuild a report purely from an in-order event stream: find the
    [Requested] event for [proc_id], create a fresh report from it, and
    apply every subsequent event with that id.  [None] when the stream
    holds no such request. *)

(** {2 Trace output} *)

val kind_name : kind -> string
val to_json : t -> string
(** One self-contained JSON object (a JSONL line, without the newline). *)

val jsonl_writer : out_channel -> t -> unit
(** A subscriber that appends [to_json] lines to the channel. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering, e.g.
    ["  1234.500 ms  proc 7  precopy-round 2 (65536 B)"]. *)
