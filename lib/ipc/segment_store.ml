open Accent_mem

(* A segment is an overlay of individually-written pages over a small list
   of bulk extents.  [put_extent] adopts a whole page-value array in O(1)
   instead of one table insert per page — the NetMsgServer caches every
   outbound Data chunk this way, so the per-page path would otherwise put
   an O(space) insert loop on every migration send. *)
type seg = {
  pages : (int, Page.value) Hashtbl.t; (* singles; consulted first *)
  mutable extents : (int * Page_run.t) list; (* (byte offset, run) *)
}

type t = (int, seg) Hashtbl.t

let create () : t = Hashtbl.create 16

let segment t segment_id =
  match Hashtbl.find_opt t segment_id with
  | Some seg -> seg
  | None ->
      let seg = { pages = Hashtbl.create 256; extents = [] } in
      Hashtbl.replace t segment_id seg;
      seg

let add_segment t ~segment_id = ignore (segment t segment_id)

let put_page t ~segment_id ~offset value =
  if offset mod Page.size <> 0 then
    invalid_arg "Segment_store.put_page: unaligned offset";
  Hashtbl.replace (segment t segment_id).pages offset value

let extent_bytes run = Page_run.length run * Page.size

let put_extent t ~segment_id ~offset run =
  if offset mod Page.size <> 0 then
    invalid_arg "Segment_store.put_extent: unaligned offset";
  if Page_run.length run > 0 then begin
    let seg = segment t segment_id in
    let hi = offset + extent_bytes run in
    List.iter
      (fun (lo, vs) ->
        if offset < lo + extent_bytes vs && lo < hi then
          invalid_arg "Segment_store.put_extent: overlapping extent")
      seg.extents;
    seg.extents <- (offset, run) :: seg.extents
  end

let put_bytes t ~segment_id ~offset data =
  if offset mod Page.size <> 0 then
    invalid_arg "Segment_store.put_bytes: unaligned offset";
  let len = Bytes.length data in
  let n = (len + Page.size - 1) / Page.size in
  let seg = segment t segment_id in
  for i = 0 to n - 1 do
    let page = Page.zero () in
    let off = i * Page.size in
    Bytes.blit data off page 0 (min Page.size (len - off));
    Hashtbl.replace seg.pages (offset + (i * Page.size)) (Page.of_bytes page)
  done

let extent_find seg offset =
  let rec loop = function
    | [] -> None
    | (lo, vs) :: rest ->
        if lo <= offset && offset < lo + extent_bytes vs then
          Some (Page_run.get vs ((offset - lo) / Page.size))
        else loop rest
  in
  loop seg.extents

let get_page t ~segment_id ~offset =
  match Hashtbl.find_opt t segment_id with
  | None -> None
  | Some seg -> (
      match Hashtbl.find_opt seg.pages offset with
      | Some _ as v -> v
      | None -> extent_find seg offset)

let read_run t ~segment_id ~offset ~pages =
  assert (pages >= 1);
  let rec loop i acc =
    if i >= pages then List.rev acc
    else
      match get_page t ~segment_id ~offset:(offset + (i * Page.size)) with
      | None -> List.rev acc
      | Some value -> loop (i + 1) (value :: acc)
  in
  loop 0 []

let has_segment t ~segment_id = Hashtbl.mem t segment_id

let offsets t ~segment_id =
  match Hashtbl.find_opt t segment_id with
  | None -> []
  | Some seg ->
      let acc = Hashtbl.fold (fun off _ acc -> off :: acc) seg.pages [] in
      let acc =
        List.fold_left
          (fun acc (lo, vs) ->
            let rec add i acc =
              if i >= Page_run.length vs then acc
              else add (i + 1) ((lo + (i * Page.size)) :: acc)
            in
            add 0 acc)
          acc seg.extents
      in
      List.sort_uniq Int.compare acc

(* Overlay pages that shadow an extent slot must not be double-counted. *)
let segment_pages t ~segment_id =
  match Hashtbl.find_opt t segment_id with
  | None -> 0
  | Some seg ->
      let in_extents =
        List.fold_left (fun acc (_, vs) -> acc + Page_run.length vs) 0 seg.extents
      in
      let overlay_only =
        Hashtbl.fold
          (fun offset _ acc ->
            if extent_find seg offset = None then acc + 1 else acc)
          seg.pages 0
      in
      in_extents + overlay_only

let segment_bytes t ~segment_id = segment_pages t ~segment_id * Page.size
let drop_segment t ~segment_id = Hashtbl.remove t segment_id
let segments t = Hashtbl.fold (fun id _ acc -> id :: acc) t [] |> List.sort Int.compare

let total_bytes t =
  Hashtbl.fold (fun id _ acc -> acc + segment_bytes t ~segment_id:id) t 0
