examples/prefetch_tuning.ml: Accent_core Accent_experiments Accent_workloads Format List Printf Report Strategy
