(** Figure 4-3: bytes transferred between the machines per trial, from the
    migration request to remote completion, plus the headline average
    savings of pure-IOU over pure-copy. *)

val bytes : Trial.result -> float
val render : Sweep.t -> string

val mean_iou_savings_pct : Sweep.t -> float
(** Mean over representatives of the no-prefetch IOU byte reduction
    relative to pure-copy — 58.2% in the paper. *)
