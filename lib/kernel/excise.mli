(** The ExciseProcess kernel trap (paper §3.1).

    Removes a process's complete context from its host: the process ceases
    to exist locally, its address space is collapsed into a contiguous
    RIMAS image, and the caller receives both context pieces ready for
    shipment.  Port rights pass transparently, so nothing that can name
    the process's ports notices.

    The two dominant costs — AMap construction over the complex process
    map, and the collapse of process memory — are charged on the virtual
    clock using the linear models calibrated against Table 4-4. *)

type timings = {
  amap_ms : float;  (** AMap construction *)
  rimas_ms : float;  (** address-space collapse *)
  overall_ms : float;  (** whole trap, including fixed overhead *)
}

type excised = {
  image : Proc_image.t;
      (** the first-class process image every other field derives from *)
  core : Context.core;
  rimas : Accent_ipc.Memory_object.t;
      (** the collapsed content: Data chunks for RealMem, Iou chunks for
          any pre-existing ImagMem (e.g. on a second migration) *)
  layout : Context.layout_run list;
      (** virtual-address ↔ collapsed-offset correspondence *)
  resident : Accent_mem.Page.index list;
      (** pages that were resident at excision — the resident set a
          strategy may choose to ship *)
  timings : timings;
}

val capture : Host.t -> Proc.t -> excised
(** Freeze and extract, leaving the process intact: interrupt it, take a
    {!Proc_image.t}, collapse it to a RIMAS, and price the trap.  The
    process must not have a fault in flight.  Pure snapshot — nothing is
    dismantled and no virtual time passes, so a caller may capture, keep
    using the live process (e.g. to drain a dirty log) and only then
    {!dissolve}, or checkpoint the image and walk away. *)

val dissolve : Host.t -> Proc.t -> excised -> k:(excised -> unit) -> unit
(** Dismantle the local incarnation of a captured process: its space is
    destroyed (the data now lives in the image), it is removed from the
    host's tables, and [k] fires once the trap's cost has elapsed. *)

val excise : Host.t -> Proc.t -> k:(excised -> unit) -> unit
(** [capture] then [dissolve]: freeze, extract and dismantle in one
    trap — the paper's ExciseProcess. *)

val estimate_timings : Cost_model.t -> Accent_mem.Address_space.t -> timings
(** The cost model by itself, for tests and what-if analysis. *)
