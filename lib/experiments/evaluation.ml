let headline_summary sweep =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let t45 = Table_4_5.rows sweep in
  line "Headline claims (paper value in parentheses):";
  line "  max copy/IOU transfer-time ratio: %.0fx (up to ~1000x)"
    (Table_4_5.max_copy_over_iou t45);
  line "  mean IOU byte savings over copy: %.1f%% (%.1f%%)"
    (Figure_4_3.mean_iou_savings_pct sweep)
    Paper.byte_savings_pct;
  line "  mean IOU message-cost savings:   %.1f%% (%.1f%%)"
    (Figure_4_4.mean_iou_savings_pct sweep)
    Paper.message_cost_savings_pct;
  (try
     let minprog = Sweep.find sweep "Minprog" in
     line "  Minprog IOU execution penalty:   %.0fx slower (%.0fx)"
       (Figure_4_1.iou_penalty minprog)
       Paper.minprog_iou_slowdown
   with Not_found -> ());
  (try
     let chess = Sweep.find sweep "Chess" in
     line "  Chess IOU execution penalty:     +%.1f%% (~%.0f%%)"
       ((Figure_4_1.iou_penalty chess -. 1.) *. 100.)
       Paper.chess_iou_penalty_pct
   with Not_found -> ());
  (try
     let pm = Sweep.find sweep "PM-Start" in
     let ratios =
       List.filter_map
         (fun (p, _) ->
           if p = 0 then None else Figure_4_1.hit_ratio pm ~prefetch:p)
         pm.Sweep.iou
     in
     if ratios <> [] then
       line "  Pasmac prefetch hit ratio:       %.0f%%..%.0f%% (~%.0f%% flat)"
         (100. *. List.fold_left Float.min 1. ratios)
         (100. *. List.fold_left Float.max 0. ratios)
         (100. *. Paper.pasmac_hit_ratio)
   with Not_found -> ());
  (try
     let lisp = Sweep.find sweep "Lisp-Del" in
     let at p = Figure_4_1.hit_ratio lisp ~prefetch:p in
     match (at 1, at 15) with
     | Some low_pf, Some high_pf ->
         line "  Lisp prefetch hit ratio pf1->pf15: %.0f%% -> %.0f%% (40%% -> 20%%)"
           (100. *. low_pf) (100. *. high_pf)
     | _ -> ()
   with Not_found -> ());
  line "  prefetch=1 never hurts end-to-end: %b (paper: always helps)"
    (Figure_4_2.pf1_always_helps sweep);
  line "  prefetch=1 reduces message costs:  %b (paper: slight drop)"
    (Figure_4_4.pf1_reduces_cost sweep);
  Buffer.contents buf

let run_all ?seed ?on_event ?(progress = true) ?(out = Format.std_formatter)
    ?csv_dir () =
  (* flush after every chunk so output interleaves correctly with the
     sweep's direct-to-channel progress ticker *)
  let out_string s =
    Format.pp_print_string out s;
    Format.pp_print_flush out ()
  in
  let out_newline () = out_string "\n" in
  let outf fmt = Printf.ksprintf out_string fmt in
  out_string (Table_4_1.render (Table_4_1.rows ?seed ()));
  out_newline ();
  out_string (Table_4_2.render (Table_4_2.rows ?seed ()));
  out_newline ();
  let sweep = Sweep.run ?seed ?on_event ~progress () in
  out_string (Table_4_3.render (Table_4_3.rows sweep));
  out_newline ();
  out_string (Table_4_4.render (Table_4_4.rows sweep));
  out_newline ();
  out_string (Table_4_5.render (Table_4_5.rows sweep));
  out_newline ();
  out_string (Figure_4_1.render sweep);
  out_newline ();
  out_string (Figure_4_2.render sweep);
  out_newline ();
  out_string (Figure_4_3.render sweep);
  out_newline ();
  out_string (Figure_4_4.render sweep);
  out_newline ();
  let panels = Figure_4_5.panels ?seed () in
  out_string (Figure_4_5.render panels);
  out_newline ();
  out_string (headline_summary sweep);
  (* §4.4.3: "sustained network transmission speeds are reduced up to 66%" *)
  (match panels with
  | iou :: _ :: copy :: _ ->
      outf
        "  peak wire rate, IOU vs copy:     -%.0f%% (paper: reduced up to \
         66%%)\n"
        (100.
        *. (1.
           -. Figure_4_5.peak_rate iou /. Figure_4_5.peak_rate copy))
  | _ -> ());
  (* beyond the paper: the hybrid engine against its two parents *)
  let hybrid = Hybrid_compare.rows ?seed () in
  out_newline ();
  out_string (Hybrid_compare.render hybrid);
  match csv_dir with
  | None -> ()
  | Some dir ->
      Csv_export.write_all ~dir sweep panels;
      let oc = open_out (Filename.concat dir "hybrid_compare.csv") in
      output_string oc (Hybrid_compare.to_csv hybrid);
      close_out oc;
      outf "\nCSV artifacts written to %s/\n" dir
