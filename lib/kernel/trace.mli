(** Reference traces: the program behaviour a simulated process executes.

    A trace is the sequence of page references a program makes, each
    preceded by some compute time.  The microengine state we migrate is,
    operationally, "which step comes next" — so a trace plus a program
    counter is the whole execution context beyond memory. *)

type step = {
  page : Accent_mem.Page.index;  (** virtual page referenced *)
  think_ms : float;  (** compute time before the reference *)
  write : bool;  (** the reference stores (dirties the page) *)
}

val step_read : ?think_ms:float -> Accent_mem.Page.index -> step
val step_write : ?think_ms:float -> Accent_mem.Page.index -> step

type t

val of_steps : step list -> t
val of_array : step array -> t

val of_arrays :
  pages:Accent_mem.Page.index array ->
  think_ms:float array ->
  writes:Bytes.t ->
  t
(** Build a trace directly from its flat columns (one byte per step in
    [writes], zero meaning read).  The arrays are adopted, not copied —
    the caller must not mutate them afterwards.  This is the
    allocation-cheap constructor the workload generator uses; raises
    [Invalid_argument] on length mismatch. *)

val length : t -> int

val step : t -> int -> step
(** Materialise step [i] as a record (allocates; for tests and cold
    paths — the hot loop uses the flat accessors below). *)

val page_at : t -> int -> Accent_mem.Page.index
val think_at : t -> int -> float
val write_at : t -> int -> bool
(** Flat column reads of step [i]: no record is built and no float is
    boxed at the read site. *)

val to_steps : t -> step list
(** All steps as records, in order (test convenience). *)

val total_think_ms : t -> float
(** Pure compute time of the whole trace — a lower bound on execution
    time with an infinitely fast memory system. *)

val distinct_pages : t -> int
val pages : t -> Accent_mem.Page.index list
(** Distinct pages in first-reference order. *)

val concat : t -> t -> t

val iter : t -> f:(step -> unit) -> unit

val write_count : t -> int

val with_writes : rng:Accent_util.Rng.t -> fraction:float -> t -> t
(** Mark each step as a store with probability [fraction] — used to give a
    read trace the dirtying behaviour that pre-copy migration (Theimer's
    V system, §5) is sensitive to. *)
