open Accent_util
open Accent_kernel
open Accent_core

(* --- bandwidth --- *)

type bandwidth_row = {
  speedup_factor : float;
  copy_s : float;
  iou_s : float;
  ratio : float;
  iou_end_to_end_s : float;
  copy_end_to_end_s : float;
}

let faster_network factor =
  let d = Cost_model.default in
  {
    d with
    Cost_model.link =
      {
        d.Cost_model.link with
        Accent_net.Link.bytes_per_ms =
          d.Cost_model.link.Accent_net.Link.bytes_per_ms *. factor;
        latency_ms = d.Cost_model.link.Accent_net.Link.latency_ms /. factor;
      };
    nms =
      {
        d.Cost_model.nms with
        Accent_net.Netmsgserver.per_byte_ms =
          d.Cost_model.nms.Accent_net.Netmsgserver.per_byte_ms /. factor;
      };
  }

let bandwidth_sweep ?(spec = Accent_workloads.Representative.lisp_t)
    ?(factors = [ 1.; 4.; 16.; 64. ]) () =
  List.map
    (fun factor ->
      let costs = faster_network factor in
      let run strategy = Trial.run ~costs ~spec ~strategy () in
      let copy = run Strategy.pure_copy and iou = run (Strategy.pure_iou ()) in
      let copy_s = Report.rimas_transfer_seconds copy.Trial.report in
      let iou_s = Report.rimas_transfer_seconds iou.Trial.report in
      {
        speedup_factor = factor;
        copy_s;
        iou_s;
        ratio = copy_s /. Float.max 1e-9 iou_s;
        iou_end_to_end_s = Report.end_to_end_seconds iou.Trial.report;
        copy_end_to_end_s = Report.end_to_end_seconds copy.Trial.report;
      })
    factors

let render_bandwidth rows =
  let t =
    Text_table.create
      ~title:
        "Ablation: network/protocol speed (Lisp-T).  The transfer-time gap \
         narrows on faster media but lazy shipment keeps winning end to end \
         until bandwidth is nearly free."
      [
        ("speedup", Text_table.Right);
        ("copy xfer (s)", Text_table.Right);
        ("IOU xfer (s)", Text_table.Right);
        ("ratio", Text_table.Right);
        ("copy e2e (s)", Text_table.Right);
        ("IOU e2e (s)", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          Printf.sprintf "%.0fx" r.speedup_factor;
          Text_table.cell_f r.copy_s;
          Text_table.cell_f ~dec:3 r.iou_s;
          Printf.sprintf "%.0fx" r.ratio;
          Text_table.cell_f r.copy_end_to_end_s;
          Text_table.cell_f r.iou_end_to_end_s;
        ])
    rows;
  Text_table.render t

(* --- NMS caching switch --- *)

type caching_row = {
  caching : bool;
  transfer_s : float;
  bulk_bytes : int;
  fault_bytes : int;
}

let caching_ablation ?(spec = Accent_workloads.Representative.minprog) () =
  List.map
    (fun caching ->
      let d = Cost_model.default in
      let costs =
        {
          d with
          Cost_model.nms =
            { d.Cost_model.nms with Accent_net.Netmsgserver.iou_caching = caching };
        }
      in
      let result =
        Trial.run ~costs ~spec ~strategy:(Strategy.pure_iou ()) ()
      in
      {
        caching;
        transfer_s = Report.rimas_transfer_seconds result.Trial.report;
        bulk_bytes = result.Trial.report.Report.bytes_bulk;
        fault_bytes = result.Trial.report.Report.bytes_fault;
      })
    [ true; false ]

let render_caching rows =
  let t =
    Text_table.create
      ~title:
        "Ablation: NetMsgServer IOU caching (Minprog, pure-IOU request).  \
         With the Section 2.4 mechanism disabled the 'lazy' migration \
         silently becomes a physical copy."
      [
        ("caching", Text_table.Left);
        ("transfer (s)", Text_table.Right);
        ("bulk bytes", Text_table.Right);
        ("fault bytes", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          (if r.caching then "on" else "off");
          Text_table.cell_f r.transfer_s;
          Text_table.cell_bytes r.bulk_bytes;
          Text_table.cell_bytes r.fault_bytes;
        ])
    rows;
  Text_table.render t

(* --- backing-process load --- *)

type backer_row = {
  lookup_ms : float;
  remote_exec_s : float;
  per_fault_ms : float;
}

let backer_load_sweep ?(spec = Accent_workloads.Representative.minprog)
    ?(lookups = [ 38.; 100.; 300.; 1000. ]) () =
  List.map
    (fun lookup_ms ->
      let d = Cost_model.default in
      let costs =
        {
          d with
          Cost_model.nms =
            {
              d.Cost_model.nms with
              Accent_net.Netmsgserver.backing_lookup_ms = lookup_ms;
            };
        }
      in
      let result =
        Trial.run ~costs ~spec ~strategy:(Strategy.pure_iou ()) ()
      in
      let r = result.Trial.report in
      {
        lookup_ms;
        remote_exec_s = Report.remote_execution_seconds r;
        per_fault_ms =
          1000.
          *. Report.remote_execution_seconds r
          /. float_of_int (max 1 r.Report.dest_faults_imag);
      })
    lookups

let render_backer rows =
  let t =
    Text_table.create
      ~title:
        "Ablation: backing-process service time (Minprog, pure-IOU).  \
         ImagMem is 'distantly accessible': a loaded backer stretches every \
         fault and hence remote execution (paper Section 2.3)."
      [
        ("lookup (ms)", Text_table.Right);
        ("remote exec (s)", Text_table.Right);
        ("per-fault (ms)", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          Text_table.cell_f ~dec:0 r.lookup_ms;
          Text_table.cell_f r.remote_exec_s;
          Text_table.cell_f ~dec:0 r.per_fault_ms;
        ])
    rows;
  Text_table.render t

(* --- destination memory pressure --- *)

type pressure_row = {
  frames : int;
  copy_exec_s : float;
  copy_disk_faults : int;
  iou_exec_s : float;
  iou_disk_faults : int;
}

let memory_pressure_sweep ?(spec = Accent_workloads.Representative.pm_start)
    ?(frame_counts = [ 4096; 1024; 512; 256 ]) () =
  List.map
    (fun frames ->
      let costs = { Cost_model.default with Cost_model.frames_per_host = frames } in
      let run strategy = Trial.run ~costs ~spec ~strategy () in
      let copy = run Strategy.pure_copy and iou = run (Strategy.pure_iou ()) in
      {
        frames;
        copy_exec_s = Report.remote_execution_seconds copy.Trial.report;
        copy_disk_faults = copy.Trial.report.Report.dest_faults_disk;
        iou_exec_s = Report.remote_execution_seconds iou.Trial.report;
        iou_disk_faults = iou.Trial.report.Report.dest_faults_disk;
      })
    frame_counts

let render_pressure rows =
  let t =
    Text_table.create
      ~title:
        "Ablation: destination physical memory (PM-Start).  Pure-copy \
         installs the whole RealMem and thrashes when it no longer fits; \
         IOU materialises only what is touched."
      [
        ("frames", Text_table.Right);
        ("copy exec (s)", Text_table.Right);
        ("copy disk faults", Text_table.Right);
        ("IOU exec (s)", Text_table.Right);
        ("IOU disk faults", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          string_of_int r.frames;
          Text_table.cell_f r.copy_exec_s;
          string_of_int r.copy_disk_faults;
          Text_table.cell_f r.iou_exec_s;
          string_of_int r.iou_disk_faults;
        ])
    rows;
  Text_table.render t

(* --- strategy face-off including the pre-copy baseline --- *)

type strategy_row = {
  strategy : string;
  downtime_s : float;
  total_bytes : int;
  end_to_end_s : float;
  message_s : float;
}

let strategy_face_off ?(spec = Accent_workloads.Representative.pm_start)
    ?(write_fraction = 0.15) () =
  List.map
    (fun strategy ->
      let result = Trial.run ~write_fraction ~spec ~strategy () in
      let r = result.Trial.report in
      {
        strategy = Strategy.name strategy;
        downtime_s = Report.downtime_seconds r;
        total_bytes = Report.bytes_total r;
        end_to_end_s = Report.end_to_end_seconds r;
        message_s = r.Report.message_seconds;
      })
    [
      Strategy.pure_copy;
      Strategy.pure_iou ~prefetch:1 ();
      Strategy.resident_set ~prefetch:1 ();
      Strategy.pre_copy ();
    ]

let render_face_off rows =
  let t =
    Text_table.create
      ~title:
        "Strategy face-off incl. the pre-copy baseline (PM-Start, 15% \
         stores).  Pre-copy minimises downtime but, as Section 5 notes, \
         both hosts still pay the full transfer; copy-on-reference cuts \
         the bytes themselves."
      [
        ("strategy", Text_table.Left);
        ("downtime (s)", Text_table.Right);
        ("bytes", Text_table.Right);
        ("end-to-end (s)", Text_table.Right);
        ("msg time (s)", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.strategy;
          Text_table.cell_f r.downtime_s;
          Text_table.cell_bytes r.total_bytes;
          Text_table.cell_f r.end_to_end_s;
          Text_table.cell_f r.message_s;
        ])
    rows;
  Text_table.render t

(* --- working set vs resident set --- *)

type ws_row = {
  ws_strategy : string;
  shipped_bytes : int;
  demand_faults : int;
  useful_fraction : float;
  ws_end_to_end_s : float;
}

let ws_vs_rs ?(spec = Accent_workloads.Representative.pm_mid)
    ?(migrate_after_ms = 5_000.) () =
  List.map
    (fun strategy ->
      let result = Trial.run ~migrate_after_ms ~spec ~strategy () in
      let r = result.Trial.report in
      let page = Accent_mem.Page.size in
      let fetched = page * (r.Report.dest_faults_imag + r.Report.prefetch_extra) in
      let shipped = r.Report.remote_real_bytes_fetched - fetched in
      let touched_shipped =
        max 0
          (r.Report.remote_touched_pages - r.Report.dest_faults_imag
         - r.Report.dest_faults_zero)
      in
      {
        ws_strategy = Strategy.name strategy;
        shipped_bytes = shipped;
        demand_faults = r.Report.dest_faults_imag;
        useful_fraction =
          (if shipped = 0 then 0.
           else
             Float.min 1.
               (float_of_int (touched_shipped * page) /. float_of_int shipped));
        ws_end_to_end_s = Report.end_to_end_seconds r;
      })
    [
      Strategy.resident_set ();
      Strategy.working_set ~window_ms:2_000. ();
      Strategy.working_set ~window_ms:10_000. ();
      Strategy.pure_iou ();
    ]

let render_ws_vs_rs rows =
  let t =
    Text_table.create
      ~title:
        "Extension: working-set vs resident-set shipment (PM-Mid, migrated \
         live at t=5s).  Section 4.2.2 calls the resident set a working-set \
         approximation and Section 4.3.4 finds it doesn't pay its way; the \
         real Denning estimator ships less and wastes less."
      [
        ("strategy", Text_table.Left);
        ("shipped", Text_table.Right);
        ("faults after", Text_table.Right);
        ("useful", Text_table.Right);
        ("end-to-end (s)", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.ws_strategy;
          Text_table.cell_bytes r.shipped_bytes;
          string_of_int r.demand_faults;
          Printf.sprintf "%.0f%%" (100. *. r.useful_fraction);
          Text_table.cell_f r.ws_end_to_end_s;
        ])
    rows;
  Text_table.render t

(* --- flow-control window --- *)

type window_row = {
  window : int;
  win_copy_s : float;
  win_iou_s : float;
  win_fault_ms : float;
}

let flow_window_sweep ?(spec = Accent_workloads.Representative.minprog)
    ?(windows = [ 1; 4; 16 ]) () =
  List.map
    (fun window ->
      let d = Cost_model.default in
      let costs =
        {
          d with
          Cost_model.nms =
            { d.Cost_model.nms with Accent_net.Netmsgserver.flow_window = window };
        }
      in
      let run strategy = Trial.run ~costs ~spec ~strategy () in
      let copy = run Strategy.pure_copy and iou = run (Strategy.pure_iou ()) in
      let iou_r = iou.Trial.report in
      {
        window;
        win_copy_s = Report.rimas_transfer_seconds copy.Trial.report;
        win_iou_s = Report.rimas_transfer_seconds iou_r;
        win_fault_ms =
          1000.
          *. Report.remote_execution_seconds iou_r
          /. float_of_int (max 1 iou_r.Report.dest_faults_imag);
      })
    windows

let render_flow_window rows =
  let t =
    Text_table.create
      ~title:
        "Ablation: NetMsgServer flow-control window (Minprog).           Stop-and-wait (window 1) is the 1987 behaviour; pipelining speeds          bulk copies but cannot touch the per-fault exchange."
      [
        ("window", Text_table.Right);
        ("copy xfer (s)", Text_table.Right);
        ("IOU xfer (s)", Text_table.Right);
        ("per-fault (ms)", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          string_of_int r.window;
          Text_table.cell_f r.win_copy_s;
          Text_table.cell_f r.win_iou_s;
          Text_table.cell_f ~dec:0 r.win_fault_ms;
        ])
    rows;
  Text_table.render t

(* --- adaptive prefetch --- *)

type adaptive_row = {
  ap_workload : string;
  ap_strategy : string;
  ap_exec_s : float;
  ap_bytes : int;
  ap_final_prefetch : int option;
}

let adaptive_trial spec =
  let world = World.create ~n_hosts:2 () in
  let proc = Accent_workloads.Spec.build (World.host world 0) spec in
  let controller = ref None in
  let report =
    Migration_manager.migrate (World.manager world 0) ~proc
      ~dest:(Migration_manager.port (World.manager world 1))
      ~strategy:(Strategy.pure_iou ~prefetch:1 ())
      ~on_restart:(fun p ->
        controller := Some (Adaptive_prefetch.attach world.World.engine p))
      ()
  in
  ignore (World.run world);
  let final =
    Option.map
      (fun c ->
        match List.rev (Adaptive_prefetch.trajectory c) with
        | (_, pf) :: _ -> pf
        | [] -> 1)
      !controller
  in
  let bytes c = Accent_net.Transfer_monitor.bytes_of world.World.monitor c in
  ( Report.remote_execution_seconds report,
    bytes Accent_ipc.Message.Fault + bytes Accent_ipc.Message.Bulk
    + bytes Accent_ipc.Message.Control,
    final )

let adaptive_prefetch
    ?(specs =
      [
        Accent_workloads.Representative.pm_start;
        Accent_workloads.Representative.lisp_del;
      ]) () =
  List.concat_map
    (fun spec ->
      let name = spec.Accent_workloads.Spec.name in
      let static prefetch =
        let result =
          Trial.run ~spec ~strategy:(Strategy.pure_iou ~prefetch ()) ()
        in
        {
          ap_workload = name;
          ap_strategy = Printf.sprintf "pf%d" prefetch;
          ap_exec_s = Report.remote_execution_seconds result.Trial.report;
          ap_bytes = Report.bytes_total result.Trial.report;
          ap_final_prefetch = None;
        }
      in
      let exec_s, bytes, final = adaptive_trial spec in
      [ static 0; static 1; static 7 ]
      @ [
          {
            ap_workload = name;
            ap_strategy = "adaptive";
            ap_exec_s = exec_s;
            ap_bytes = bytes;
            ap_final_prefetch = final;
          };
        ])
    specs

let render_adaptive rows =
  let t =
    Text_table.create
      ~title:
        "Extension: adaptive prefetch (controller walks the amount up          while prefetched pages keep being used, down when they stop;          Section 6's 'apply that knowledge' made automatic)"
      [
        ("workload", Text_table.Left);
        ("prefetch", Text_table.Left);
        ("remote exec (s)", Text_table.Right);
        ("bytes", Text_table.Right);
        ("settled at", Text_table.Right);
      ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.ap_workload;
          r.ap_strategy;
          Text_table.cell_f r.ap_exec_s;
          Text_table.cell_bytes r.ap_bytes;
          (match r.ap_final_prefetch with
          | Some pf -> Printf.sprintf "pf%d" pf
          | None -> "-");
        ])
    rows;
  Text_table.render t

let run_all () =
  print_string (render_bandwidth (bandwidth_sweep ()));
  print_newline ();
  print_string (render_caching (caching_ablation ()));
  print_newline ();
  print_string (render_backer (backer_load_sweep ()));
  print_newline ();
  print_string (render_pressure (memory_pressure_sweep ()));
  print_newline ();
  print_string (render_face_off (strategy_face_off ()));
  print_newline ();
  print_string (render_ws_vs_rs (ws_vs_rs ()));
  print_newline ();
  print_string (render_flow_window (flow_window_sweep ()));
  print_newline ();
  print_string (render_adaptive (adaptive_prefetch ()));
  print_newline ();
  print_string (Cluster_scenario.render (Cluster_scenario.compare_policies ()))
