lib/ipc/segment_store.mli: Accent_mem
